// Tests for the observability subsystem: histogram bucketing and
// percentiles, flight-recorder overflow accounting, span nesting over a
// real engine, PathEvent name round-trips, and the JSON/Chrome-trace
// exporters (golden output + parse-back).
#include <gtest/gtest.h>

#include <sstream>

#include "src/obs/histogram.h"
#include "src/obs/json_util.h"
#include "src/obs/slo_window.h"
#include "src/obs/trace_context.h"
#include "src/obs/trace_export.h"
#include "src/obs/trace_scope.h"
#include "src/runtime/runtime.h"
#include "src/sim/stats.h"

namespace cki {
namespace {

// ---------------------------------------------------------------- Histogram

TEST(HistogramTest, SmallValuesAreExactBuckets) {
  // Values below kSubCount each get their own unit-width bucket.
  for (uint64_t v = 0; v < Histogram::kSubCount; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), v);
    EXPECT_EQ(Histogram::BucketLowerBound(v), v);
    EXPECT_EQ(Histogram::BucketWidth(v), 1u);
  }
}

TEST(HistogramTest, BucketBoundariesAreMonotoneAndCovering) {
  // Every bucket's lower bound must map back to that bucket, and the
  // value one below it to the previous bucket.
  for (size_t idx = 1; idx < Histogram::kOverflowBucket; ++idx) {
    uint64_t lo = Histogram::BucketLowerBound(idx);
    EXPECT_EQ(Histogram::BucketIndex(lo), idx) << "lo=" << lo;
    EXPECT_EQ(Histogram::BucketIndex(lo - 1), idx - 1) << "lo=" << lo;
  }
}

TEST(HistogramTest, PowerOfTwoBoundaries) {
  // 2^h starts a fresh octave: sub-bucket 0 of block h-kSubBits+1.
  for (int h = Histogram::kSubBits; h <= Histogram::kMaxExp; ++h) {
    uint64_t v = 1ULL << h;
    size_t idx = Histogram::BucketIndex(v);
    EXPECT_EQ(Histogram::BucketLowerBound(idx), v);
  }
}

TEST(HistogramTest, OverflowBucketCatchesHugeValues) {
  Histogram h;
  uint64_t huge = 1ULL << 45;  // beyond kMaxExp = 39
  h.Add(huge);
  h.Add(huge + 12345);
  EXPECT_EQ(h.overflow_count(), 2u);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), huge + 12345);
  // Percentiles of overflow-only data report the true max, not a bucket
  // midpoint.
  EXPECT_DOUBLE_EQ(h.Percentile(50), static_cast<double>(huge + 12345));
}

TEST(HistogramTest, PercentilesOnKnownDistribution) {
  // 1..1000: p50 ~ 500, p99 ~ 990, within the ~6% relative bucket error.
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) {
    h.Add(v);
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_NEAR(h.Percentile(50), 500.0, 500.0 * 0.07);
  EXPECT_NEAR(h.Percentile(95), 950.0, 950.0 * 0.07);
  EXPECT_NEAR(h.Percentile(99), 990.0, 990.0 * 0.07);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 1000.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 500.5);
}

TEST(HistogramTest, ConstantDistributionIsExact) {
  Histogram h;
  for (int i = 0; i < 100; ++i) {
    h.Add(777);
  }
  // min == max == 777 clamps every percentile to the exact value.
  EXPECT_DOUBLE_EQ(h.Percentile(50), 777.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 777.0);
}

TEST(HistogramTest, MergeAddsCountsAndExtremes) {
  Histogram a;
  Histogram b;
  a.Add(10);
  a.Add(20);
  b.Add(5);
  b.Add(40);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), 40u);
  EXPECT_DOUBLE_EQ(a.Sum(), 75.0);
}

TEST(HistogramTest, JsonSummaryParses) {
  Histogram h;
  h.Add(100);
  h.Add(200);
  std::ostringstream os;
  h.WriteJson(os);
  std::string error;
  std::optional<JsonValue> parsed = ParseJson(os.str(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const JsonValue* count = parsed->Find("count");
  ASSERT_NE(count, nullptr);
  EXPECT_DOUBLE_EQ(count->number, 2.0);
}

// ---------------------------------------------------------- FlightRecorder

TEST(FlightRecorderTest, OverflowKeepsNewestAndCountsDropped) {
  FlightRecorder rec(4);
  for (uint64_t i = 0; i < 10; ++i) {
    rec.Record(TraceRecord{.ts = i * 100, .arg = i});
  }
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.total_recorded(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);  // never silent
  std::vector<TraceRecord> chron = rec.Chronological();
  ASSERT_EQ(chron.size(), 4u);
  // The four newest records, oldest first.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(chron[i].arg, 6 + i);
    EXPECT_EQ(chron[i].ts, (6 + i) * 100);
  }
}

TEST(FlightRecorderTest, NoOverflowBeforeCapacity) {
  FlightRecorder rec(8);
  rec.Record(TraceRecord{.ts = 1});
  rec.Record(TraceRecord{.ts = 2});
  EXPECT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.dropped(), 0u);
  std::vector<TraceRecord> chron = rec.Chronological();
  ASSERT_EQ(chron.size(), 2u);
  EXPECT_EQ(chron[0].ts, 1u);
  EXPECT_EQ(chron[1].ts, 2u);
}

// ------------------------------------------------------- PathEvent naming

TEST(PathEventTest, EveryEventNameRoundTrips) {
  for (size_t i = 0; i < static_cast<size_t>(PathEvent::kCount); ++i) {
    PathEvent e = static_cast<PathEvent>(i);
    std::string_view name = PathEventName(e);
    EXPECT_NE(name, "unknown");
    std::optional<PathEvent> back = PathEventFromName(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, e) << name;
  }
  EXPECT_FALSE(PathEventFromName("not_an_event").has_value());
  EXPECT_EQ(PathEventName(PathEvent::kCount), "unknown");
}

// ------------------------------------------------------------- Disabled path

TEST(ObservabilityTest, DisabledContextRecordsNothing) {
  SimContext ctx;
  EXPECT_FALSE(ctx.obs().enabled());
  ctx.Charge(100, PathEvent::kSyscallEntry);
  ctx.RecordEvent(PathEvent::kTlbHit);
  {
    TraceScope scope(ctx, "never");
    ctx.ChargeWork(50);
  }
  // The TraceLog still counts (it is always on); obs stores stay
  // unallocated.
  EXPECT_EQ(ctx.trace().Count(PathEvent::kSyscallEntry), 1u);
  EXPECT_FALSE(ctx.obs().has_data());
  std::ostringstream os;
  ctx.obs().WriteJson(os);
  EXPECT_EQ(os.str(), "{\"enabled\":false}");
}

// -------------------------------------------------- Span nesting on engines

TEST(ObservabilityTest, SpanTreeCoversMeasuredTimeOnCki) {
  Testbed bed(RuntimeKind::kCki, Deployment::kBareMetal);
  uint64_t base = bed.engine().MmapAnon(4 * kPageSize, false);
  bed.engine().UserTouch(base, true);  // warm intermediate tables

  bed.ctx().obs().Enable();
  bed.ctx().obs().set_owner(bed.engine().id());
  SimNanos total = bed.Measure([&] {
    bed.engine().UserSyscall(SyscallRequest{.no = Sys::kGetpid});
    bed.engine().UserTouch(base + kPageSize, true);
    bed.engine().UserSyscall(SyscallRequest{.no = Sys::kGetpid});
  });
  bed.ctx().obs().Disable();

  const SpanProfiler& prof = bed.ctx().obs().profiler();
  // All spans closed, and the root spans account for exactly the measured
  // simulated time: the breakdown sums to the end-to-end latency.
  EXPECT_EQ(prof.depth(), 0u);
  EXPECT_EQ(prof.RootTotal(), total);

  int syscall_node = prof.FindChild(-1, "syscall");
  int touch_node = prof.FindChild(-1, "touch");
  ASSERT_NE(syscall_node, -1);
  ASSERT_NE(touch_node, -1);
  EXPECT_EQ(prof.nodes()[static_cast<size_t>(syscall_node)].count, 2u);
  EXPECT_EQ(prof.nodes()[static_cast<size_t>(touch_node)].count, 1u);

  // The guest kernel's handler span nests under the engine's root span.
  int getpid_node = prof.FindChild(syscall_node, "getpid");
  ASSERT_NE(getpid_node, -1);
  EXPECT_EQ(prof.nodes()[static_cast<size_t>(getpid_node)].count, 2u);

  // The touch path shows the CKI mechanism: fault -> mm/fault_in -> KSM
  // PTE store, each nested inside its parent.
  int fault_node = prof.FindChild(touch_node, "fault");
  ASSERT_NE(fault_node, -1);
  int fault_in_node = prof.FindChild(fault_node, "mm/fault_in");
  ASSERT_NE(fault_in_node, -1);
  EXPECT_NE(prof.FindChild(fault_in_node, "ksm/store_pte"), -1);

  // total >= self everywhere; parent total covers child total.
  const SpanProfiler::Node& touch = prof.nodes()[static_cast<size_t>(touch_node)];
  const SpanProfiler::Node& fault = prof.nodes()[static_cast<size_t>(fault_node)];
  EXPECT_GE(touch.total, touch.self);
  EXPECT_GE(touch.total, fault.total);

  // The per-syscall latency histogram recorded both getpid calls.
  const Histogram* hist = bed.ctx().obs().metrics().FindHist("syscall/getpid");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), 2u);
}

TEST(ObservabilityTest, RootTotalMatchesMeasureAcrossEngines) {
  for (RuntimeKind kind :
       {RuntimeKind::kRunc, RuntimeKind::kHvm, RuntimeKind::kPvm, RuntimeKind::kCki}) {
    Testbed bed(kind, Deployment::kBareMetal);
    uint64_t base = bed.engine().MmapAnon(8 * kPageSize, false);
    bed.engine().UserTouch(base, true);
    bed.ctx().obs().Enable();
    SimNanos total = bed.Measure([&] {
      for (int i = 1; i < 8; ++i) {
        bed.engine().UserTouch(base + static_cast<uint64_t>(i) * kPageSize, true);
      }
      bed.engine().UserSyscall(SyscallRequest{.no = Sys::kWrite});
    });
    EXPECT_EQ(bed.ctx().obs().profiler().depth(), 0u);
    EXPECT_EQ(bed.ctx().obs().profiler().RootTotal(), total)
        << "engine " << static_cast<int>(kind);
    EXPECT_GT(bed.ctx().obs().recorder().total_recorded(), 0u);
  }
}

// ------------------------------------------------------------ JSON exports

TEST(ObservabilityTest, WriteJsonParsesAndReportsRecorder) {
  SimContext ctx;
  ctx.obs().Enable(/*ring_capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    ctx.Charge(10, PathEvent::kTlbMiss);
  }
  {
    TraceScope scope(ctx, "phase_a");
    ctx.ChargeWork(100);
  }
  ctx.obs().metrics().Inc("boots");
  std::ostringstream os;
  ctx.obs().WriteJson(os);
  std::string error;
  std::optional<JsonValue> parsed = ParseJson(os.str(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const JsonValue* recorder = parsed->Find("recorder");
  ASSERT_NE(recorder, nullptr);
  const JsonValue* dropped = recorder->Find("dropped");
  ASSERT_NE(dropped, nullptr);
  // 10 instants + span begin/end = 12 records into a 4-slot ring.
  EXPECT_DOUBLE_EQ(dropped->number, 8.0);
  const JsonValue* spans = parsed->Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->items.size(), 1u);
  const JsonValue* name = spans->items[0].Find("name");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->string_value, "phase_a");
  const JsonValue* total_ns = spans->items[0].Find("total_ns");
  ASSERT_NE(total_ns, nullptr);
  EXPECT_DOUBLE_EQ(total_ns->number, 100.0);
  const JsonValue* metrics = parsed->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  const JsonValue* counters = metrics->Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* boots = counters->Find("boots");
  ASSERT_NE(boots, nullptr);
  EXPECT_DOUBLE_EQ(boots->number, 1.0);
}

TEST(TraceExportTest, GoldenChromeTrace) {
  SimContext ctx;
  ctx.obs().Enable(/*ring_capacity=*/8);
  ctx.obs().set_owner(3);
  {
    TraceScope span(ctx, "phase_a");
    ctx.ChargeWork(1000);
    ctx.RecordEvent(PathEvent::kSyscallEntry, 7);
    ctx.ChargeWork(500);
  }
  std::ostringstream os;
  WriteChromeTrace(ctx.obs(), os);
  EXPECT_EQ(
      os.str(),
      "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"cki-sim\"}},\n"
      "{\"name\":\"phase_a\",\"cat\":\"span\",\"ph\":\"B\",\"ts\":0.000,\"pid\":1,\"tid\":3},\n"
      "{\"name\":\"syscall_entry\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"ts\":1.000,"
      "\"pid\":1,\"tid\":3,\"args\":{\"arg\":7}},\n"
      "{\"name\":\"phase_a\",\"cat\":\"span\",\"ph\":\"E\",\"ts\":1.500,\"pid\":1,\"tid\":3}\n"
      "]}\n");

  // And it is well-formed JSON with balanced B/E events.
  std::string error;
  std::optional<JsonValue> parsed = ParseJson(os.str(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->items.size(), 4u);
  int begins = 0;
  int ends = 0;
  for (const JsonValue& e : events->items) {
    const JsonValue* ph = e.Find("ph");
    ASSERT_NE(ph, nullptr);
    begins += (ph->string_value == "B");
    ends += (ph->string_value == "E");
  }
  EXPECT_EQ(begins, 1);
  EXPECT_EQ(ends, 1);
}

TEST(TraceExportTest, TraceFromRealEngineParses) {
  Testbed bed(RuntimeKind::kRunc, Deployment::kBareMetal);
  uint64_t base = bed.engine().MmapAnon(2 * kPageSize, false);
  bed.ctx().obs().Enable();
  bed.ctx().obs().set_owner(bed.engine().id());
  bed.engine().UserTouch(base, true);
  bed.engine().UserSyscall(SyscallRequest{.no = Sys::kGetpid});
  std::ostringstream os;
  WriteChromeTrace(bed.ctx().obs(), os);
  std::string error;
  std::optional<JsonValue> parsed = ParseJson(os.str(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_GT(events->items.size(), 4u);
}

// ------------------------------------------------------------ TraceContext

TEST(TraceContextTest, MintIsDeterministicNonZeroAndDistinct) {
  TraceContext a = MakeTraceContext(42, 1);
  TraceContext b = MakeTraceContext(42, 1);
  EXPECT_TRUE(a.active());
  EXPECT_EQ(a.trace_id, b.trace_id);  // pure function of (seed, sequence)
  EXPECT_EQ(a.span_id, b.span_id);
  EXPECT_NE(MakeTraceContext(42, 2).trace_id, a.trace_id);
  EXPECT_NE(MakeTraceContext(43, 1).trace_id, a.trace_id);
}

TEST(TraceContextTest, DeriveSpanIdSaltsAndRespectsInactive) {
  TraceContext tc = MakeTraceContext(7, 7);
  EXPECT_NE(DeriveSpanId(tc, 1), DeriveSpanId(tc, 2));
  EXPECT_NE(DeriveSpanId(tc, 1), 0u);
  EXPECT_EQ(DeriveSpanId(TraceContext{}, 1), 0u);  // inactive stays inactive
}

// ----------------------------------------------------------- Sampling gate

TEST(ObservabilityTest, SamplingGateKeepsOneInNRootsWithPairedMarkers) {
  SimContext ctx;
  ctx.obs().Enable();
  ctx.obs().set_sample_every(4);
  for (int i = 0; i < 8; ++i) {
    TraceScope scope(ctx, "op");
    ctx.RecordEvent(PathEvent::kTlbHit);
    ctx.ChargeWork(10);
  }
  const ObsSelfStats& self = ctx.obs().self_stats();
  EXPECT_EQ(self.root_ops, 8u);
  EXPECT_EQ(self.sampled_ops, 2u);  // roots 0 and 4
  EXPECT_GT(self.suppressed_writes, 0u);

  // A sampled root records its whole subtree, an unsampled one records
  // nothing — begin/end markers stay paired either way.
  size_t begins = 0;
  size_t ends = 0;
  for (const TraceRecord& r : ctx.obs().recorder().Chronological()) {
    begins += r.kind == TraceRecordKind::kSpanBegin;
    ends += r.kind == TraceRecordKind::kSpanEnd;
  }
  EXPECT_EQ(begins, 2u);
  EXPECT_EQ(ends, 2u);

  // The span tree only saw the sampled roots, and every span is closed.
  const SpanProfiler& prof = ctx.obs().profiler();
  EXPECT_EQ(prof.depth(), 0u);
  int op_node = prof.FindChild(-1, "op");
  ASSERT_NE(op_node, -1);
  EXPECT_EQ(prof.nodes()[static_cast<size_t>(op_node)].count, 2u);
}

TEST(ObservabilityTest, WritesOutsideAnyScopeBypassTheGate) {
  SimContext ctx;
  ctx.obs().Enable();
  ctx.obs().set_sample_every(1000);
  ctx.RecordEvent(PathEvent::kTlbHit);  // setup/teardown writes always keep
  EXPECT_EQ(ctx.obs().self_stats().ring_writes, 1u);
  EXPECT_EQ(ctx.obs().self_stats().suppressed_writes, 0u);
}

TEST(ObservabilityTest, SloWindowsAndSelfStatsStayFullRateUnderSampling) {
  Testbed bed(RuntimeKind::kRunc, Deployment::kBareMetal);
  bed.ctx().obs().Enable();
  bed.ctx().obs().set_sample_every(1u << 30);  // effectively sample nothing
  for (int i = 0; i < 10; ++i) {
    bed.engine().UserSyscall(SyscallRequest{.no = Sys::kGetpid});
  }
  // Only the first root op recorded spans/histograms...
  const Histogram* hist = bed.ctx().obs().metrics().FindHist("syscall/getpid");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), 1u);
  // ...but the SLO window saw every syscall (always-on telemetry).
  EXPECT_EQ(bed.ctx().obs().self_stats().slo_samples, 10u);
  const SloWindow* slo = bed.ctx().obs().FindSlo(bed.engine().id());
  ASSERT_NE(slo, nullptr);
  EXPECT_EQ(slo->total_ops(), 10u);
  EXPECT_GT(slo->Percentile(99), 0u);

  // Self-accounting exports as obs/self/* counters.
  MetricsRegistry out;
  bed.ctx().obs().ExportSelfMetrics(out);
  EXPECT_EQ(out.CounterValue("obs/self/root_ops"),
            bed.ctx().obs().self_stats().root_ops);
  EXPECT_EQ(out.CounterValue("obs/self/slo_samples"), 10u);
}

TEST(ObservabilityTest, ExportSloMetricsDumpsEveryWindowAsGauges) {
  Testbed bed(RuntimeKind::kRunc, Deployment::kBareMetal);
  bed.ctx().obs().Enable();
  for (int i = 0; i < 10; ++i) {
    bed.engine().UserSyscall(SyscallRequest{.no = Sys::kGetpid});
  }
  const uint32_t owner = bed.engine().id();
  bed.ctx().obs().SloSetGauge(owner, bed.ctx().clock().now(), 42);

  MetricsRegistry out;
  bed.ctx().obs().ExportSloMetrics(out);
  const std::string prefix = "slo/" + std::to_string(owner) + "/";
  const SloWindow* slo = bed.ctx().obs().FindSlo(owner);
  ASSERT_NE(slo, nullptr);
  EXPECT_EQ(out.CounterValue(prefix + "window_ops"), slo->WindowOps());
  EXPECT_EQ(out.CounterValue(prefix + "p99_ns"), slo->Percentile(99));
  EXPECT_GT(out.CounterValue(prefix + "p99_ns"), 0u);
  EXPECT_EQ(out.CounterValue(prefix + "ops_per_sec"),
            static_cast<uint64_t>(slo->OpsPerSec() + 0.5));
  EXPECT_EQ(out.CounterValue(prefix + "gauge"), 42u);
  EXPECT_EQ(out.CounterValue(prefix + "faults"), 0u);

  // Exporting from a never-enabled hub is a harmless no-op.
  Observability empty;
  MetricsRegistry none;
  empty.ExportSloMetrics(none);
  EXPECT_EQ(none.CounterValue(prefix + "window_ops"), 0u);
}

// -------------------------------------------------------------- SloWindow

TEST(SloWindowTest, BucketsExpireByEpoch) {
  SloWindow w(SloWindow::Config{.bucket_ns = 100, .buckets = 4});
  EXPECT_EQ(w.window_ns(), 400u);
  w.ObserveLatency(50, 10);    // epoch 0
  w.ObserveLatency(150, 20);   // epoch 1
  w.ObserveLatency(250, 30);   // epoch 2
  EXPECT_EQ(w.WindowOps(), 3u);
  EXPECT_EQ(w.Percentile(100), 30u);
  // Epoch 4 reuses epoch 0's slot; epoch 0 also falls out of the window.
  w.ObserveLatency(450, 40);
  EXPECT_EQ(w.WindowOps(), 3u);     // epochs 1, 2, 4
  EXPECT_EQ(w.total_ops(), 4u);     // lifetime counter never expires
  // A long quiet gap: only the newest bucket is live afterwards.
  w.ObserveLatency(10'000, 99);
  EXPECT_EQ(w.WindowOps(), 1u);
  EXPECT_EQ(w.Percentile(99), 99u);
  EXPECT_EQ(w.last_ns(), 10'000u);
}

TEST(SloWindowTest, FaultsGaugeAndRate) {
  SloWindow w(SloWindow::Config{.bucket_ns = 100, .buckets = 2});
  w.IncFaults(10);    // epoch 0
  w.IncFaults(110);   // epoch 1
  EXPECT_EQ(w.WindowFaults(), 2u);
  w.SetGauge(120, 77);
  EXPECT_EQ(w.gauge(), 77u);
  w.IncFaults(350);   // epoch 3 evicts epoch 1's slot; epoch 0 expires too
  EXPECT_EQ(w.WindowFaults(), 1u);
  EXPECT_EQ(w.total_faults(), 3u);

  SloWindow rate;  // default geometry: 8 x 1ms
  for (int i = 0; i < 8; ++i) {
    rate.ObserveLatency(static_cast<SimNanos>(i) * 1'000'000, 5);
  }
  EXPECT_DOUBLE_EQ(rate.OpsPerSec(), 1000.0);  // 8 ops over 8 simulated ms
}

TEST(SloWindowTest, JsonParses) {
  SloWindow w;
  w.ObserveLatency(10, 123);
  w.SetGauge(20, 4);
  std::ostringstream os;
  w.WriteJson(os);
  std::string error;
  std::optional<JsonValue> parsed = ParseJson(os.str(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_DOUBLE_EQ(parsed->Find("ops")->number, 1.0);
  EXPECT_DOUBLE_EQ(parsed->Find("gauge")->number, 4.0);
}

// ------------------------------------------------------------ Flow export

TEST(TraceExportTest, FlowPointsRenderAsPerfettoFlowEvents) {
  SimContext ctx;
  ctx.obs().Enable();
  ctx.obs().RecordFlowPoint(10, TraceRecordKind::kFlowStart, 0xABCD);
  ctx.obs().RecordFlowPoint(20, TraceRecordKind::kFlowStep, 0xABCD);
  ctx.obs().RecordFlowPoint(30, TraceRecordKind::kFlowEnd, 0xABCD);
  ctx.obs().RecordFlowPoint(40, TraceRecordKind::kFlowStart, 0);  // inactive: dropped
  EXPECT_EQ(ctx.obs().self_stats().flow_points, 3u);

  std::ostringstream os;
  WriteChromeTrace(ctx.obs(), os);
  std::string error;
  std::optional<JsonValue> parsed = ParseJson(os.str(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);

  std::vector<std::string> phases;
  std::string id;
  bool binding_on_end = false;
  for (const JsonValue& e : events->items) {
    const JsonValue* cat = e.Find("cat");
    if (cat == nullptr || cat->string_value != "flow") {
      continue;
    }
    phases.push_back(e.Find("ph")->string_value);
    const JsonValue* ev_id = e.Find("id");
    ASSERT_NE(ev_id, nullptr);
    if (id.empty()) {
      id = ev_id->string_value;
    }
    EXPECT_EQ(ev_id->string_value, id);  // one request = one flow id
    if (phases.back() == "f") {
      const JsonValue* bp = e.Find("bp");
      binding_on_end = bp != nullptr && bp->string_value == "e";
    }
  }
  ASSERT_EQ(phases.size(), 3u);
  EXPECT_EQ(phases[0], "s");
  EXPECT_EQ(phases[1], "t");
  EXPECT_EQ(phases[2], "f");
  EXPECT_TRUE(binding_on_end);
}

// -------------------------------------------------- Merge edge cases

TEST(HistogramTest, MergeEmptyIntoEmptyStaysEmptyAndUsable) {
  Histogram a;
  Histogram b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.min(), 0u);
  EXPECT_EQ(a.max(), 0u);
  EXPECT_DOUBLE_EQ(a.Percentile(99), 0.0);
  a.Add(5);  // still usable after the no-op merge
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 5u);
}

TEST(HistogramTest, MergeEmptyIntoFilledLeavesItUntouched) {
  Histogram a;
  a.Add(10);
  a.Add(30);
  Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 30u);
  EXPECT_DOUBLE_EQ(a.Sum(), 40.0);
}

TEST(HistogramTest, MergeCombinesSaturatedOverflowBuckets) {
  Histogram a;
  Histogram b;
  uint64_t huge = 1ULL << 44;  // beyond kMaxExp: overflow bucket
  a.Add(huge);
  b.Add(huge + 5);
  b.Add(3);
  a.Merge(b);
  EXPECT_EQ(a.overflow_count(), 2u);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 3u);
  EXPECT_EQ(a.max(), huge + 5);  // true max survives, not a bucket bound
  EXPECT_DOUBLE_EQ(a.Percentile(100), static_cast<double>(huge + 5));
}

TEST(HistogramTest, MergeOrderInvariance) {
  Histogram parts[3];
  Histogram replay;  // every sample recorded directly
  uint64_t v = 1;
  for (int p = 0; p < 3; ++p) {
    for (int i = 0; i < 50; ++i) {
      v = v * 2862933555777941757ULL + 3037000493ULL;  // fixed LCG
      uint64_t sample = v % 100000;
      parts[p].Add(sample);
      replay.Add(sample);
    }
  }
  Histogram ab;
  ab.Merge(parts[0]);
  ab.Merge(parts[1]);
  ab.Merge(parts[2]);
  Histogram cb;
  cb.Merge(parts[2]);
  cb.Merge(parts[1]);
  cb.Merge(parts[0]);
  for (const Histogram* m : {&ab, &cb}) {
    EXPECT_EQ(m->count(), replay.count());
    EXPECT_EQ(m->min(), replay.min());
    EXPECT_EQ(m->max(), replay.max());
    EXPECT_DOUBLE_EQ(m->Sum(), replay.Sum());
    for (size_t i = 0; i < Histogram::kBucketCount; ++i) {
      ASSERT_EQ(m->bucket(i), replay.bucket(i)) << "bucket " << i;
    }
    EXPECT_DOUBLE_EQ(m->Percentile(50), replay.Percentile(50));
    EXPECT_DOUBLE_EQ(m->Percentile(99), replay.Percentile(99));
  }
}

TEST(MetricsRegistryTest, MergeEdgeCases) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.Merge(b);  // empty into empty
  EXPECT_EQ(a.CounterValue("x"), 0u);
  EXPECT_EQ(a.hist_count(), 0u);
  b.Inc("x", 3);
  b.Hist("lat").Add(10);
  a.Merge(b);  // creates missing entries
  EXPECT_EQ(a.CounterValue("x"), 3u);
  ASSERT_NE(a.FindHist("lat"), nullptr);
  EXPECT_EQ(a.FindHist("lat")->count(), 1u);
  a.Merge(b);  // accumulates into existing ones
  EXPECT_EQ(a.CounterValue("x"), 6u);
  EXPECT_EQ(a.FindHist("lat")->count(), 2u);
  MetricsRegistry empty;
  a.Merge(empty);  // no-op
  EXPECT_EQ(a.CounterValue("x"), 6u);
  EXPECT_EQ(a.FindHist("lat")->count(), 2u);
}

TEST(MetricsRegistryTest, MergeOrderInvariance) {
  MetricsRegistry b;
  b.Inc("x", 1);
  b.Hist("lat").Add(5);
  MetricsRegistry c;
  c.Inc("x", 2);
  c.Inc("y", 7);
  c.Hist("lat").Add(500);
  MetricsRegistry bc;
  bc.Merge(b);
  bc.Merge(c);
  MetricsRegistry cb;
  cb.Merge(c);
  cb.Merge(b);
  std::ostringstream os_bc;
  bc.WriteJson(os_bc);
  std::ostringstream os_cb;
  cb.WriteJson(os_cb);
  EXPECT_EQ(os_bc.str(), os_cb.str());
}

TEST(MetricsRegistryTest, CsvCounterRowsMatchGolden) {
  MetricsRegistry m;
  m.Inc("boots", 2);
  std::ostringstream os;
  MetricsRegistry::WriteCsvHeader(os);
  m.WriteCsvRows(os, "cfg");
  EXPECT_EQ(os.str(),
            "config,type,name,value,count,min,max,mean,p50,p95,p99\n"
            "cfg,counter,boots,2,,,,,,,\n");
}

// --------------------------------------------------------- Stats (const)

TEST(StatsTest, PercentileIsConstCallable) {
  Stats s;
  s.Add(3.0);
  s.Add(1.0);
  s.Add(2.0);
  const Stats& cs = s;  // Percentile must work through a const ref
  EXPECT_DOUBLE_EQ(cs.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(cs.Percentile(50), 2.0);
  EXPECT_DOUBLE_EQ(cs.Percentile(100), 3.0);
}

}  // namespace
}  // namespace cki
