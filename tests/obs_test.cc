// Tests for the observability subsystem: histogram bucketing and
// percentiles, flight-recorder overflow accounting, span nesting over a
// real engine, PathEvent name round-trips, and the JSON/Chrome-trace
// exporters (golden output + parse-back).
#include <gtest/gtest.h>

#include <sstream>

#include "src/obs/histogram.h"
#include "src/obs/json_util.h"
#include "src/obs/trace_export.h"
#include "src/obs/trace_scope.h"
#include "src/runtime/runtime.h"
#include "src/sim/stats.h"

namespace cki {
namespace {

// ---------------------------------------------------------------- Histogram

TEST(HistogramTest, SmallValuesAreExactBuckets) {
  // Values below kSubCount each get their own unit-width bucket.
  for (uint64_t v = 0; v < Histogram::kSubCount; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), v);
    EXPECT_EQ(Histogram::BucketLowerBound(v), v);
    EXPECT_EQ(Histogram::BucketWidth(v), 1u);
  }
}

TEST(HistogramTest, BucketBoundariesAreMonotoneAndCovering) {
  // Every bucket's lower bound must map back to that bucket, and the
  // value one below it to the previous bucket.
  for (size_t idx = 1; idx < Histogram::kOverflowBucket; ++idx) {
    uint64_t lo = Histogram::BucketLowerBound(idx);
    EXPECT_EQ(Histogram::BucketIndex(lo), idx) << "lo=" << lo;
    EXPECT_EQ(Histogram::BucketIndex(lo - 1), idx - 1) << "lo=" << lo;
  }
}

TEST(HistogramTest, PowerOfTwoBoundaries) {
  // 2^h starts a fresh octave: sub-bucket 0 of block h-kSubBits+1.
  for (int h = Histogram::kSubBits; h <= Histogram::kMaxExp; ++h) {
    uint64_t v = 1ULL << h;
    size_t idx = Histogram::BucketIndex(v);
    EXPECT_EQ(Histogram::BucketLowerBound(idx), v);
  }
}

TEST(HistogramTest, OverflowBucketCatchesHugeValues) {
  Histogram h;
  uint64_t huge = 1ULL << 45;  // beyond kMaxExp = 39
  h.Add(huge);
  h.Add(huge + 12345);
  EXPECT_EQ(h.overflow_count(), 2u);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), huge + 12345);
  // Percentiles of overflow-only data report the true max, not a bucket
  // midpoint.
  EXPECT_DOUBLE_EQ(h.Percentile(50), static_cast<double>(huge + 12345));
}

TEST(HistogramTest, PercentilesOnKnownDistribution) {
  // 1..1000: p50 ~ 500, p99 ~ 990, within the ~6% relative bucket error.
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) {
    h.Add(v);
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_NEAR(h.Percentile(50), 500.0, 500.0 * 0.07);
  EXPECT_NEAR(h.Percentile(95), 950.0, 950.0 * 0.07);
  EXPECT_NEAR(h.Percentile(99), 990.0, 990.0 * 0.07);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 1000.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 500.5);
}

TEST(HistogramTest, ConstantDistributionIsExact) {
  Histogram h;
  for (int i = 0; i < 100; ++i) {
    h.Add(777);
  }
  // min == max == 777 clamps every percentile to the exact value.
  EXPECT_DOUBLE_EQ(h.Percentile(50), 777.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 777.0);
}

TEST(HistogramTest, MergeAddsCountsAndExtremes) {
  Histogram a;
  Histogram b;
  a.Add(10);
  a.Add(20);
  b.Add(5);
  b.Add(40);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), 40u);
  EXPECT_DOUBLE_EQ(a.Sum(), 75.0);
}

TEST(HistogramTest, JsonSummaryParses) {
  Histogram h;
  h.Add(100);
  h.Add(200);
  std::ostringstream os;
  h.WriteJson(os);
  std::string error;
  std::optional<JsonValue> parsed = ParseJson(os.str(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const JsonValue* count = parsed->Find("count");
  ASSERT_NE(count, nullptr);
  EXPECT_DOUBLE_EQ(count->number, 2.0);
}

// ---------------------------------------------------------- FlightRecorder

TEST(FlightRecorderTest, OverflowKeepsNewestAndCountsDropped) {
  FlightRecorder rec(4);
  for (uint64_t i = 0; i < 10; ++i) {
    rec.Record(TraceRecord{.ts = i * 100, .arg = i});
  }
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.total_recorded(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);  // never silent
  std::vector<TraceRecord> chron = rec.Chronological();
  ASSERT_EQ(chron.size(), 4u);
  // The four newest records, oldest first.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(chron[i].arg, 6 + i);
    EXPECT_EQ(chron[i].ts, (6 + i) * 100);
  }
}

TEST(FlightRecorderTest, NoOverflowBeforeCapacity) {
  FlightRecorder rec(8);
  rec.Record(TraceRecord{.ts = 1});
  rec.Record(TraceRecord{.ts = 2});
  EXPECT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.dropped(), 0u);
  std::vector<TraceRecord> chron = rec.Chronological();
  ASSERT_EQ(chron.size(), 2u);
  EXPECT_EQ(chron[0].ts, 1u);
  EXPECT_EQ(chron[1].ts, 2u);
}

// ------------------------------------------------------- PathEvent naming

TEST(PathEventTest, EveryEventNameRoundTrips) {
  for (size_t i = 0; i < static_cast<size_t>(PathEvent::kCount); ++i) {
    PathEvent e = static_cast<PathEvent>(i);
    std::string_view name = PathEventName(e);
    EXPECT_NE(name, "unknown");
    std::optional<PathEvent> back = PathEventFromName(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, e) << name;
  }
  EXPECT_FALSE(PathEventFromName("not_an_event").has_value());
  EXPECT_EQ(PathEventName(PathEvent::kCount), "unknown");
}

// ------------------------------------------------------------- Disabled path

TEST(ObservabilityTest, DisabledContextRecordsNothing) {
  SimContext ctx;
  EXPECT_FALSE(ctx.obs().enabled());
  ctx.Charge(100, PathEvent::kSyscallEntry);
  ctx.RecordEvent(PathEvent::kTlbHit);
  {
    TraceScope scope(ctx, "never");
    ctx.ChargeWork(50);
  }
  // The TraceLog still counts (it is always on); obs stores stay
  // unallocated.
  EXPECT_EQ(ctx.trace().Count(PathEvent::kSyscallEntry), 1u);
  EXPECT_FALSE(ctx.obs().has_data());
  std::ostringstream os;
  ctx.obs().WriteJson(os);
  EXPECT_EQ(os.str(), "{\"enabled\":false}");
}

// -------------------------------------------------- Span nesting on engines

TEST(ObservabilityTest, SpanTreeCoversMeasuredTimeOnCki) {
  Testbed bed(RuntimeKind::kCki, Deployment::kBareMetal);
  uint64_t base = bed.engine().MmapAnon(4 * kPageSize, false);
  bed.engine().UserTouch(base, true);  // warm intermediate tables

  bed.ctx().obs().Enable();
  bed.ctx().obs().set_owner(bed.engine().id());
  SimNanos total = bed.Measure([&] {
    bed.engine().UserSyscall(SyscallRequest{.no = Sys::kGetpid});
    bed.engine().UserTouch(base + kPageSize, true);
    bed.engine().UserSyscall(SyscallRequest{.no = Sys::kGetpid});
  });
  bed.ctx().obs().Disable();

  const SpanProfiler& prof = bed.ctx().obs().profiler();
  // All spans closed, and the root spans account for exactly the measured
  // simulated time: the breakdown sums to the end-to-end latency.
  EXPECT_EQ(prof.depth(), 0u);
  EXPECT_EQ(prof.RootTotal(), total);

  int syscall_node = prof.FindChild(-1, "syscall");
  int touch_node = prof.FindChild(-1, "touch");
  ASSERT_NE(syscall_node, -1);
  ASSERT_NE(touch_node, -1);
  EXPECT_EQ(prof.nodes()[static_cast<size_t>(syscall_node)].count, 2u);
  EXPECT_EQ(prof.nodes()[static_cast<size_t>(touch_node)].count, 1u);

  // The guest kernel's handler span nests under the engine's root span.
  int getpid_node = prof.FindChild(syscall_node, "getpid");
  ASSERT_NE(getpid_node, -1);
  EXPECT_EQ(prof.nodes()[static_cast<size_t>(getpid_node)].count, 2u);

  // The touch path shows the CKI mechanism: fault -> mm/fault_in -> KSM
  // PTE store, each nested inside its parent.
  int fault_node = prof.FindChild(touch_node, "fault");
  ASSERT_NE(fault_node, -1);
  int fault_in_node = prof.FindChild(fault_node, "mm/fault_in");
  ASSERT_NE(fault_in_node, -1);
  EXPECT_NE(prof.FindChild(fault_in_node, "ksm/store_pte"), -1);

  // total >= self everywhere; parent total covers child total.
  const SpanProfiler::Node& touch = prof.nodes()[static_cast<size_t>(touch_node)];
  const SpanProfiler::Node& fault = prof.nodes()[static_cast<size_t>(fault_node)];
  EXPECT_GE(touch.total, touch.self);
  EXPECT_GE(touch.total, fault.total);

  // The per-syscall latency histogram recorded both getpid calls.
  const Histogram* hist = bed.ctx().obs().metrics().FindHist("syscall/getpid");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), 2u);
}

TEST(ObservabilityTest, RootTotalMatchesMeasureAcrossEngines) {
  for (RuntimeKind kind :
       {RuntimeKind::kRunc, RuntimeKind::kHvm, RuntimeKind::kPvm, RuntimeKind::kCki}) {
    Testbed bed(kind, Deployment::kBareMetal);
    uint64_t base = bed.engine().MmapAnon(8 * kPageSize, false);
    bed.engine().UserTouch(base, true);
    bed.ctx().obs().Enable();
    SimNanos total = bed.Measure([&] {
      for (int i = 1; i < 8; ++i) {
        bed.engine().UserTouch(base + static_cast<uint64_t>(i) * kPageSize, true);
      }
      bed.engine().UserSyscall(SyscallRequest{.no = Sys::kWrite});
    });
    EXPECT_EQ(bed.ctx().obs().profiler().depth(), 0u);
    EXPECT_EQ(bed.ctx().obs().profiler().RootTotal(), total)
        << "engine " << static_cast<int>(kind);
    EXPECT_GT(bed.ctx().obs().recorder().total_recorded(), 0u);
  }
}

// ------------------------------------------------------------ JSON exports

TEST(ObservabilityTest, WriteJsonParsesAndReportsRecorder) {
  SimContext ctx;
  ctx.obs().Enable(/*ring_capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    ctx.Charge(10, PathEvent::kTlbMiss);
  }
  {
    TraceScope scope(ctx, "phase_a");
    ctx.ChargeWork(100);
  }
  ctx.obs().metrics().Inc("boots");
  std::ostringstream os;
  ctx.obs().WriteJson(os);
  std::string error;
  std::optional<JsonValue> parsed = ParseJson(os.str(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const JsonValue* recorder = parsed->Find("recorder");
  ASSERT_NE(recorder, nullptr);
  const JsonValue* dropped = recorder->Find("dropped");
  ASSERT_NE(dropped, nullptr);
  // 10 instants + span begin/end = 12 records into a 4-slot ring.
  EXPECT_DOUBLE_EQ(dropped->number, 8.0);
  const JsonValue* spans = parsed->Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->items.size(), 1u);
  const JsonValue* name = spans->items[0].Find("name");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->string_value, "phase_a");
  const JsonValue* total_ns = spans->items[0].Find("total_ns");
  ASSERT_NE(total_ns, nullptr);
  EXPECT_DOUBLE_EQ(total_ns->number, 100.0);
  const JsonValue* metrics = parsed->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  const JsonValue* counters = metrics->Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* boots = counters->Find("boots");
  ASSERT_NE(boots, nullptr);
  EXPECT_DOUBLE_EQ(boots->number, 1.0);
}

TEST(TraceExportTest, GoldenChromeTrace) {
  SimContext ctx;
  ctx.obs().Enable(/*ring_capacity=*/8);
  ctx.obs().set_owner(3);
  {
    TraceScope span(ctx, "phase_a");
    ctx.ChargeWork(1000);
    ctx.RecordEvent(PathEvent::kSyscallEntry, 7);
    ctx.ChargeWork(500);
  }
  std::ostringstream os;
  WriteChromeTrace(ctx.obs(), os);
  EXPECT_EQ(
      os.str(),
      "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"cki-sim\"}},\n"
      "{\"name\":\"phase_a\",\"cat\":\"span\",\"ph\":\"B\",\"ts\":0.000,\"pid\":1,\"tid\":3},\n"
      "{\"name\":\"syscall_entry\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"ts\":1.000,"
      "\"pid\":1,\"tid\":3,\"args\":{\"arg\":7}},\n"
      "{\"name\":\"phase_a\",\"cat\":\"span\",\"ph\":\"E\",\"ts\":1.500,\"pid\":1,\"tid\":3}\n"
      "]}\n");

  // And it is well-formed JSON with balanced B/E events.
  std::string error;
  std::optional<JsonValue> parsed = ParseJson(os.str(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->items.size(), 4u);
  int begins = 0;
  int ends = 0;
  for (const JsonValue& e : events->items) {
    const JsonValue* ph = e.Find("ph");
    ASSERT_NE(ph, nullptr);
    begins += (ph->string_value == "B");
    ends += (ph->string_value == "E");
  }
  EXPECT_EQ(begins, 1);
  EXPECT_EQ(ends, 1);
}

TEST(TraceExportTest, TraceFromRealEngineParses) {
  Testbed bed(RuntimeKind::kRunc, Deployment::kBareMetal);
  uint64_t base = bed.engine().MmapAnon(2 * kPageSize, false);
  bed.ctx().obs().Enable();
  bed.ctx().obs().set_owner(bed.engine().id());
  bed.engine().UserTouch(base, true);
  bed.engine().UserSyscall(SyscallRequest{.no = Sys::kGetpid});
  std::ostringstream os;
  WriteChromeTrace(bed.ctx().obs(), os);
  std::string error;
  std::optional<JsonValue> parsed = ParseJson(os.str(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_GT(events->items.size(), 4u);
}

// --------------------------------------------------------- Stats (const)

TEST(StatsTest, PercentileIsConstCallable) {
  Stats s;
  s.Add(3.0);
  s.Add(1.0);
  s.Add(2.0);
  const Stats& cs = s;  // Percentile must work through a const ref
  EXPECT_DOUBLE_EQ(cs.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(cs.Percentile(50), 2.0);
  EXPECT_DOUBLE_EQ(cs.Percentile(100), 3.0);
}

}  // namespace
}  // namespace cki
