// End-to-end validation of the calibrated engine paths against the paper's
// published microbenchmarks (Table 2, Figure 10, section 7.1). These tests
// are the anchor of the reproduction: every application-level result builds
// on these paths.
#include <gtest/gtest.h>

#include "src/guest/process.h"
#include "src/runtime/runtime.h"
#include "src/virt/hvm_engine.h"
#include "src/virt/pvm_engine.h"

namespace cki {
namespace {

constexpr double kTolerance = 0.05;  // 5 % of the paper's number

void ExpectNear(double measured, double paper, std::string_view what) {
  EXPECT_NEAR(measured, paper, paper * kTolerance)
      << what << ": measured " << measured << " ns vs paper " << paper << " ns";
}

SimNanos SyscallLatency(Testbed& bed) {
  // Warm up once, then average a small batch.
  bed.engine().UserSyscall(SyscallRequest{.no = Sys::kGetpid});
  constexpr int kIters = 64;
  SimNanos total = bed.Measure([&] {
    for (int i = 0; i < kIters; ++i) {
      bed.engine().UserSyscall(SyscallRequest{.no = Sys::kGetpid});
    }
  });
  return total / kIters;
}

// Latency of handling one fresh anonymous page (mmap'd, first touch).
SimNanos PageFaultLatency(Testbed& bed, int pages = 64) {
  uint64_t base = bed.engine().MmapAnon(static_cast<uint64_t>(pages) * kPageSize, false);
  EXPECT_NE(base, 0u);
  SimNanos total = bed.Measure([&] {
    for (int i = 0; i < pages; ++i) {
      EXPECT_EQ(bed.engine().UserTouch(base + static_cast<uint64_t>(i) * kPageSize, true),
                TouchResult::kOk);
    }
  });
  return total / static_cast<SimNanos>(pages);
}

SimNanos HypercallLatency(Testbed& bed) {
  bed.engine().GuestHypercall(HypercallOp::kNop);
  constexpr int kIters = 64;
  SimNanos total = bed.Measure([&] {
    for (int i = 0; i < kIters; ++i) {
      bed.engine().GuestHypercall(HypercallOp::kNop);
    }
  });
  return total / kIters;
}

// --- Figure 10b: system call latency -------------------------------------

TEST(MicroSyscall, RuncIs90ns) {
  Testbed bed(RuntimeKind::kRunc, Deployment::kBareMetal);
  ExpectNear(static_cast<double>(SyscallLatency(bed)), 90, "RunC syscall");
}

TEST(MicroSyscall, HvmIs90ns) {
  Testbed bed(RuntimeKind::kHvm, Deployment::kBareMetal);
  ExpectNear(static_cast<double>(SyscallLatency(bed)), 91, "HVM syscall");
}

TEST(MicroSyscall, CkiIs90ns) {
  Testbed bed(RuntimeKind::kCki, Deployment::kBareMetal);
  ExpectNear(static_cast<double>(SyscallLatency(bed)), 90, "CKI syscall");
}

TEST(MicroSyscall, PvmIs336ns) {
  Testbed bed(RuntimeKind::kPvm, Deployment::kBareMetal);
  ExpectNear(static_cast<double>(SyscallLatency(bed)), 336, "PVM syscall");
}

TEST(MicroSyscall, PvmNestedSameAsBareMetal) {
  Testbed bed(RuntimeKind::kPvm, Deployment::kNested);
  ExpectNear(static_cast<double>(SyscallLatency(bed)), 336, "PVM-NST syscall");
}

TEST(MicroSyscall, CkiWithoutOpt2Is238ns) {
  Testbed bed(RuntimeKind::kCkiNoOpt2, Deployment::kBareMetal);
  ExpectNear(static_cast<double>(SyscallLatency(bed)), 238, "CKI-wo-OPT2 syscall");
}

TEST(MicroSyscall, CkiWithoutOpt3Is153ns) {
  Testbed bed(RuntimeKind::kCkiNoOpt3, Deployment::kBareMetal);
  ExpectNear(static_cast<double>(SyscallLatency(bed)), 153, "CKI-wo-OPT3 syscall");
}

// --- Figure 10a: page fault latency ---------------------------------------

TEST(MicroPageFault, RuncIs1000ns) {
  Testbed bed(RuntimeKind::kRunc, Deployment::kBareMetal);
  ExpectNear(static_cast<double>(PageFaultLatency(bed)), 1000, "RunC pgfault");
}

TEST(MicroPageFault, CkiIs1067ns) {
  Testbed bed(RuntimeKind::kCki, Deployment::kBareMetal);
  ExpectNear(static_cast<double>(PageFaultLatency(bed)), 1067, "CKI pgfault");
}

TEST(MicroPageFault, HvmBareMetalIs3257ns) {
  Testbed bed(RuntimeKind::kHvm, Deployment::kBareMetal);
  ExpectNear(static_cast<double>(PageFaultLatency(bed)), 3257, "HVM-BM pgfault");
}

TEST(MicroPageFault, HvmNestedIs32565ns) {
  Testbed bed(RuntimeKind::kHvm, Deployment::kNested);
  ExpectNear(static_cast<double>(PageFaultLatency(bed)), 32565, "HVM-NST pgfault");
}

TEST(MicroPageFault, PvmIs4407ns) {
  Testbed bed(RuntimeKind::kPvm, Deployment::kBareMetal);
  ExpectNear(static_cast<double>(PageFaultLatency(bed)), 4407, "PVM pgfault");
}

TEST(MicroPageFault, CkiNestedEqualsBareMetal) {
  Testbed bm(RuntimeKind::kCki, Deployment::kBareMetal);
  Testbed nst(RuntimeKind::kCki, Deployment::kNested);
  EXPECT_EQ(PageFaultLatency(bm), PageFaultLatency(nst))
      << "CKI needs no L0 intervention: nested faults cost the same";
}

// --- Table 2 / sec 7.1: empty hypercall -----------------------------------

TEST(MicroHypercall, HvmBareMetalIs1088ns) {
  Testbed bed(RuntimeKind::kHvm, Deployment::kBareMetal);
  ExpectNear(static_cast<double>(HypercallLatency(bed)), 1088, "HVM-BM hypercall");
}

TEST(MicroHypercall, HvmNestedIs6746ns) {
  Testbed bed(RuntimeKind::kHvm, Deployment::kNested);
  ExpectNear(static_cast<double>(HypercallLatency(bed)), 6746, "HVM-NST hypercall");
}

TEST(MicroHypercall, PvmBareMetalIs466ns) {
  Testbed bed(RuntimeKind::kPvm, Deployment::kBareMetal);
  ExpectNear(static_cast<double>(HypercallLatency(bed)), 466, "PVM-BM hypercall");
}

TEST(MicroHypercall, PvmNestedIs486ns) {
  Testbed bed(RuntimeKind::kPvm, Deployment::kNested);
  ExpectNear(static_cast<double>(HypercallLatency(bed)), 486, "PVM-NST hypercall");
}

TEST(MicroHypercall, CkiIs390nsEverywhere) {
  Testbed bm(RuntimeKind::kCki, Deployment::kBareMetal);
  Testbed nst(RuntimeKind::kCki, Deployment::kNested);
  ExpectNear(static_cast<double>(HypercallLatency(bm)), 390, "CKI-BM hypercall");
  ExpectNear(static_cast<double>(HypercallLatency(nst)), 390, "CKI-NST hypercall");
}

// --- path composition (event counts, independent of latency) ----------------

TEST(PathComposition, CkiSyscallHasNoSwitches) {
  Testbed bed(RuntimeKind::kCki, Deployment::kBareMetal);
  auto before = bed.ctx().trace().Snapshot();
  bed.engine().UserSyscall(SyscallRequest{.no = Sys::kGetpid});
  EXPECT_EQ(CountDelta(before, bed.ctx().trace(), PathEvent::kPksSwitch), 0u);
  EXPECT_EQ(CountDelta(before, bed.ctx().trace(), PathEvent::kCr3Switch), 0u);
  EXPECT_EQ(CountDelta(before, bed.ctx().trace(), PathEvent::kModeSwitch), 0u);
  EXPECT_EQ(CountDelta(before, bed.ctx().trace(), PathEvent::kHypercall), 0u);
}

TEST(PathComposition, PvmSyscallHasTwoModeAndTwoCr3Switches) {
  Testbed bed(RuntimeKind::kPvm, Deployment::kBareMetal);
  auto before = bed.ctx().trace().Snapshot();
  bed.engine().UserSyscall(SyscallRequest{.no = Sys::kGetpid});
  EXPECT_EQ(CountDelta(before, bed.ctx().trace(), PathEvent::kModeSwitch), 2u);
  EXPECT_EQ(CountDelta(before, bed.ctx().trace(), PathEvent::kCr3Switch), 2u);
}

TEST(PathComposition, PvmPageFaultDoesThreeHostRoundTrips) {
  Testbed bed(RuntimeKind::kPvm, Deployment::kBareMetal);
  uint64_t base = bed.engine().MmapAnon(2 * kPageSize, false);
  // Warm the intermediate page-table levels so the measured fault performs
  // exactly one leaf PTE update.
  ASSERT_EQ(bed.engine().UserTouch(base, true), TouchResult::kOk);
  auto before = bed.ctx().trace().Snapshot();
  ASSERT_EQ(bed.engine().UserTouch(base + kPageSize, true), TouchResult::kOk);
  // 3 host round trips = 6 context switches (sec 2.4.2) + shadow emulation.
  EXPECT_EQ(CountDelta(before, bed.ctx().trace(), PathEvent::kVmExit), 3u);
  EXPECT_EQ(CountDelta(before, bed.ctx().trace(), PathEvent::kModeSwitch), 6u);
  EXPECT_GE(CountDelta(before, bed.ctx().trace(), PathEvent::kShadowPtUpdate), 1u);
}

TEST(PathComposition, HvmNestedPageFaultBouncesThroughL0) {
  Testbed bed(RuntimeKind::kHvm, Deployment::kNested);
  uint64_t base = bed.engine().MmapAnon(kPageSize, false);
  auto before = bed.ctx().trace().Snapshot();
  ASSERT_EQ(bed.engine().UserTouch(base, true), TouchResult::kOk);
  EXPECT_EQ(CountDelta(before, bed.ctx().trace(), PathEvent::kEptViolation), 1u);
  EXPECT_GE(CountDelta(before, bed.ctx().trace(), PathEvent::kL0WorldSwitch), 8u);
}

TEST(PathComposition, CkiPageFaultUsesKsmGateNotHost) {
  Testbed bed(RuntimeKind::kCki, Deployment::kBareMetal);
  uint64_t base = bed.engine().MmapAnon(kPageSize, false);
  auto before = bed.ctx().trace().Snapshot();
  ASSERT_EQ(bed.engine().UserTouch(base, true), TouchResult::kOk);
  EXPECT_GE(CountDelta(before, bed.ctx().trace(), PathEvent::kKsmCall), 1u);
  EXPECT_EQ(CountDelta(before, bed.ctx().trace(), PathEvent::kVmExit), 0u);
  EXPECT_EQ(CountDelta(before, bed.ctx().trace(), PathEvent::kNestedVmExit), 0u);
  EXPECT_EQ(CountDelta(before, bed.ctx().trace(), PathEvent::kHypercall), 0u);
}

// --- Table 2 cold faults ----------------------------------------------------

TEST(MicroColdFault, HvmColdIs4347ns) {
  Testbed bed(RuntimeKind::kHvm, Deployment::kBareMetal);
  static_cast<HvmEngine&>(bed.engine()).set_cold_faults(true);
  ExpectNear(static_cast<double>(PageFaultLatency(bed)), 4347, "HVM cold pgfault");
}

TEST(MicroColdFault, PvmColdIs6727ns) {
  Testbed bed(RuntimeKind::kPvm, Deployment::kBareMetal);
  static_cast<PvmEngine&>(bed.engine()).set_cold_faults(true);
  ExpectNear(static_cast<double>(PageFaultLatency(bed)), 6727, "PVM cold pgfault");
}

}  // namespace
}  // namespace cki
