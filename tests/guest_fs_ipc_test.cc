// Unit tests for tmpfs and the IPC channels of the model guest kernel.
#include <gtest/gtest.h>

#include "src/guest/ipc.h"
#include "src/guest/tmpfs.h"
#include "src/hw/phys_mem.h"

namespace cki {
namespace {

TEST(TmpfsTest, CreateLookupUnlink) {
  Tmpfs fs;
  int ino = fs.OpenOrCreate("/etc/conf");
  EXPECT_GT(ino, 0);
  EXPECT_EQ(fs.OpenOrCreate("/etc/conf"), ino);
  EXPECT_EQ(fs.Lookup("/etc/conf"), ino);
  EXPECT_EQ(fs.Lookup("/missing"), -1);
  EXPECT_TRUE(fs.Unlink("/etc/conf"));
  EXPECT_EQ(fs.Lookup("/etc/conf"), -1);
  EXPECT_FALSE(fs.Unlink("/etc/conf"));
}

TEST(TmpfsTest, ResizeTracksBlocks) {
  Tmpfs fs;
  int ino = fs.OpenOrCreate("/data");
  EXPECT_EQ(fs.Resize(ino, 3 * kPageSize + 100), 4);  // 4 fresh blocks
  EXPECT_EQ(fs.Get(ino)->size, 3 * kPageSize + 100);
  EXPECT_EQ(fs.Resize(ino, 3 * kPageSize + 200), 0);  // same block count
  EXPECT_EQ(fs.Resize(ino, kPageSize), -3);           // shrink
  EXPECT_EQ(fs.Get(ino)->blocks, 1u);
}

TEST(TmpfsTest, DistinctFilesDistinctInodes) {
  Tmpfs fs;
  int a = fs.OpenOrCreate("/a");
  int b = fs.OpenOrCreate("/b");
  EXPECT_NE(a, b);
  EXPECT_EQ(fs.file_count(), 2u);
}

TEST(IpcChannelTest, FifoByteAccounting) {
  IpcChannel pipe(ChannelKind::kPipe);
  EXPECT_EQ(pipe.Read(10), 0u);
  EXPECT_EQ(pipe.Write(100), 100u);
  EXPECT_EQ(pipe.Write(50), 50u);
  EXPECT_EQ(pipe.buffered(), 150u);
  EXPECT_EQ(pipe.Read(120), 120u);  // crosses message boundary
  EXPECT_EQ(pipe.Read(100), 30u);
  EXPECT_FALSE(pipe.readable());
}

TEST(IpcChannelTest, CapacityBoundsWrites) {
  IpcChannel pipe(ChannelKind::kPipe, /*capacity=*/100);
  EXPECT_EQ(pipe.Write(80), 80u);
  EXPECT_EQ(pipe.Write(80), 20u);  // partial
  EXPECT_EQ(pipe.Write(10), 0u);   // full -> writer must block
  pipe.Read(50);
  EXPECT_EQ(pipe.Write(60), 50u);
}

TEST(IpcChannelTest, RefCountingControlsLifetime) {
  IpcChannel socket(ChannelKind::kUnixSocket);
  socket.AddRef();
  socket.AddRef();
  EXPECT_FALSE(socket.Release());
  EXPECT_TRUE(socket.Release());
}

}  // namespace
}  // namespace cki
