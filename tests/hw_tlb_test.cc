// Unit tests for the PCID-tagged TLB.
#include <gtest/gtest.h>

#include "src/hw/phys_mem.h"
#include "src/hw/pte.h"
#include "src/hw/tlb.h"

namespace cki {
namespace {

TEST(TlbTest, InsertAndLookup) {
  Tlb tlb;
  tlb.Insert(1, 0x40'0000, 0x9000, kPteW, 0, false);
  auto hit = tlb.Lookup(1, 0x40'0123);
  ASSERT_TRUE(hit != nullptr);
  EXPECT_EQ(hit->pfn, 0x9000u >> kPageShift);
  EXPECT_FALSE(tlb.Lookup(1, 0x41'0000) != nullptr);
}

TEST(TlbTest, PcidTagsSeparateContexts) {
  Tlb tlb;
  tlb.Insert(1, 0x40'0000, 0x9000, 0, 0, false);
  EXPECT_TRUE(tlb.Lookup(1, 0x40'0000) != nullptr);
  EXPECT_FALSE(tlb.Lookup(2, 0x40'0000) != nullptr);
  tlb.Insert(2, 0x40'0000, 0xA000, 0, 0, false);
  EXPECT_EQ(tlb.Lookup(1, 0x40'0000)->pfn, 0x9000u >> kPageShift);
  EXPECT_EQ(tlb.Lookup(2, 0x40'0000)->pfn, 0xA000u >> kPageShift);
}

TEST(TlbTest, InvalidatePageIsPcidLocal) {
  Tlb tlb;
  tlb.Insert(1, 0x40'0000, 0x9000, 0, 0, false);
  tlb.Insert(2, 0x40'0000, 0xA000, 0, 0, false);
  tlb.InvalidatePage(1, 0x40'0000);
  EXPECT_FALSE(tlb.Lookup(1, 0x40'0000) != nullptr);
  EXPECT_TRUE(tlb.Lookup(2, 0x40'0000) != nullptr);
}

TEST(TlbTest, InvalidatePcidDropsWholeContext) {
  Tlb tlb;
  for (uint64_t i = 0; i < 16; ++i) {
    tlb.Insert(3, i * kPageSize, i * kPageSize, 0, 0, false);
    tlb.Insert(4, i * kPageSize, i * kPageSize, 0, 0, false);
  }
  tlb.InvalidatePcid(3);
  EXPECT_EQ(tlb.ValidCountForPcid(3), 0u);
  EXPECT_EQ(tlb.ValidCountForPcid(4), 16u);
}

TEST(TlbTest, FlushAllDropsEverything) {
  Tlb tlb;
  tlb.Insert(1, 0x1000, 0x1000, 0, 0, false);
  tlb.Insert(2, 0x2000, 0x2000, 0, 0, false);
  tlb.FlushAll();
  EXPECT_EQ(tlb.ValidCount(), 0u);
}

TEST(TlbTest, HugePagesCoverTwoMegabytes) {
  Tlb tlb;
  tlb.Insert(1, 0x40'0000, 0x20'0000, 0, 0, /*huge=*/true);
  // Anywhere in the same 2 MiB region hits.
  auto hit = tlb.Lookup(1, 0x40'0000 + 0x12'3456);
  ASSERT_TRUE(hit != nullptr);
  EXPECT_TRUE(hit->huge);
  EXPECT_FALSE(tlb.Lookup(1, 0x60'0000) != nullptr);
}

TEST(TlbTest, EvictionKeepsCapacityBounded) {
  Tlb tlb(/*sets=*/4, /*ways=*/2);  // 8 entries
  for (uint64_t i = 0; i < 64; ++i) {
    tlb.Insert(1, i * kPageSize, i * kPageSize, 0, 0, false);
  }
  EXPECT_LE(tlb.ValidCount(), 8u);
}

TEST(TlbTest, HitMissCountersTrack) {
  Tlb tlb;
  tlb.Lookup(1, 0x5000);
  tlb.Insert(1, 0x5000, 0x5000, 0, 0, false);
  tlb.Lookup(1, 0x5000);
  EXPECT_EQ(tlb.misses(), 1u);
  EXPECT_EQ(tlb.hits(), 1u);
  tlb.ResetCounters();
  EXPECT_EQ(tlb.misses() + tlb.hits(), 0u);
}

TEST(TlbTest, ReinsertUpdatesExistingEntry) {
  Tlb tlb;
  tlb.Insert(1, 0x7000, 0x1000, 0, 0, false);
  tlb.Insert(1, 0x7000, 0x2000, kPteW, 5, false);
  auto hit = tlb.Lookup(1, 0x7000);
  ASSERT_TRUE(hit != nullptr);
  EXPECT_EQ(hit->pfn, 0x2000u >> kPageShift);
  EXPECT_EQ(hit->pkey, 5u);
}

}  // namespace
}  // namespace cki
