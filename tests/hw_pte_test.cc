// Unit tests for the PTE encoding and protection-key helpers.
#include <gtest/gtest.h>

#include "src/hw/pks.h"
#include "src/hw/pte.h"

namespace cki {
namespace {

TEST(PteTest, RoundTripsAddressFlagsAndKey) {
  uint64_t pte = MakePte(0x1234'5000, kPteP | kPteW | kPteU, /*pkey=*/7);
  EXPECT_EQ(PteAddr(pte), 0x1234'5000u);
  EXPECT_EQ(PtePkey(pte), 7u);
  EXPECT_TRUE(PtePresent(pte));
  EXPECT_TRUE(PteWritable(pte));
  EXPECT_TRUE(PteUser(pte));
  EXPECT_FALSE(PteHuge(pte));
  EXPECT_FALSE(PteNoExec(pte));
}

TEST(PteTest, KeyBitsDoNotLeakIntoAddress) {
  uint64_t pte = MakePte(0xFFFF'F000, 0, /*pkey=*/15);
  EXPECT_EQ(PteAddr(pte), 0xFFFF'F000u);
  EXPECT_EQ(PtePkey(pte), 15u);
}

TEST(PteTest, PkeyMaskedToFourBits) {
  uint64_t pte = MakePte(0, 0, /*pkey=*/0x1F);
  EXPECT_EQ(PtePkey(pte), 0xFu);
}

TEST(PteTest, HugeAndNxBits) {
  uint64_t pte = MakePte(0x20'0000, kPteP | kPtePs | kPteNx);
  EXPECT_TRUE(PteHuge(pte));
  EXPECT_TRUE(PteNoExec(pte));
}

TEST(PteTest, IndexExtraction) {
  // va = PML4 idx 1, PDPT idx 2, PD idx 3, PT idx 4.
  uint64_t va = (1ULL << 39) | (2ULL << 30) | (3ULL << 21) | (4ULL << 12);
  EXPECT_EQ(PtIndex(va, 4), 1);
  EXPECT_EQ(PtIndex(va, 3), 2);
  EXPECT_EQ(PtIndex(va, 2), 3);
  EXPECT_EQ(PtIndex(va, 1), 4);
}

TEST(PteTest, Cr3PackingKeepsPcidAndRoot) {
  uint64_t cr3 = MakeCr3(0xABCD'E000, 0x123);
  EXPECT_EQ(Cr3Root(cr3), 0xABCD'E000u);
  EXPECT_EQ(Cr3Pcid(cr3), 0x123);
}

TEST(PksTest, AccessDisableBlocksReadsAndWrites) {
  uint32_t pkr = PkAccessDisable(3);
  EXPECT_FALSE(PkAllows(pkr, 3, /*is_write=*/false));
  EXPECT_FALSE(PkAllows(pkr, 3, /*is_write=*/true));
  EXPECT_TRUE(PkAllows(pkr, 2, false));
  EXPECT_TRUE(PkAllows(pkr, 4, true));
}

TEST(PksTest, WriteDisableAllowsReadsOnly) {
  uint32_t pkr = PkWriteDisable(5);
  EXPECT_TRUE(PkAllows(pkr, 5, /*is_write=*/false));
  EXPECT_FALSE(PkAllows(pkr, 5, /*is_write=*/true));
}

TEST(PksTest, GuestPkrsDeniesKsmAndPtpWrites) {
  // The CKI domain assignment: guest code can neither touch KSM memory nor
  // write page-table pages, but may read PTPs and use its own pages freely.
  EXPECT_TRUE(PkAllows(kPkrsGuest, kPkeyGuest, true));
  EXPECT_FALSE(PkAllows(kPkrsGuest, kPkeyKsm, false));
  EXPECT_FALSE(PkAllows(kPkrsGuest, kPkeyKsm, true));
  EXPECT_TRUE(PkAllows(kPkrsGuest, kPkeyPtp, false));
  EXPECT_FALSE(PkAllows(kPkrsGuest, kPkeyPtp, true));
}

TEST(PksTest, MonitorPkrsAllowsEverything) {
  for (int key = 0; key < kNumPkeys; ++key) {
    EXPECT_TRUE(PkAllows(kPkrsMonitor, static_cast<uint32_t>(key), true));
  }
}

}  // namespace
}  // namespace cki
