// Edge-case and failure-injection tests for the hardware layer: huge-page
// conflicts, walk reference counting, EPT unmap, and contract violations
// that must fail loudly (counted results or typed host-fatal exceptions)
// rather than corrupt state silently.
#include <gtest/gtest.h>

#include "src/fault/fault_domain.h"
#include "src/hw/ept.h"
#include "src/hw/page_table.h"
#include "src/hw/phys_mem.h"
#include "src/host/frame_allocator.h"

namespace cki {
namespace {

class HwEdgeTest : public ::testing::Test {
 protected:
  HwEdgeTest() : next_(0x100'0000) {}

  uint64_t Alloc() {
    uint64_t pa = next_;
    next_ += kPageSize;
    mem_.InstallFrame(pa);
    return pa;
  }

  PageTableEditor MakeEditor() {
    return PageTableEditor(
        mem_, [this](int) { return Alloc(); },
        [this](uint64_t pte_pa, uint64_t value, int, uint64_t) {
          mem_.WriteU64(pte_pa, value);
          return true;
        });
  }

  PhysMem mem_;
  uint64_t next_;
};

TEST_F(HwEdgeTest, CannotMap4KUnderExistingHugeLeaf) {
  PageTableEditor editor = MakeEditor();
  uint64_t root = Alloc();
  ASSERT_TRUE(editor.MapPage(root, 0x4000'0000, 0x200'0000, kPteP | kPteW, 0, PageSize::k2M));
  // A 4K mapping inside the covered range must be refused (cannot descend
  // past a huge leaf).
  EXPECT_FALSE(editor.MapPage(root, 0x4000'1000, 0x9000, kPteP, 0, PageSize::k4K));
}

TEST_F(HwEdgeTest, HugeLeafUnmapAndRemap) {
  PageTableEditor editor = MakeEditor();
  uint64_t root = Alloc();
  ASSERT_TRUE(editor.MapPage(root, 0x4000'0000, 0x200'0000, kPteP | kPteW, 0, PageSize::k2M));
  ASSERT_TRUE(editor.UnmapPage(root, 0x4000'0000));
  // Now a 4K mapping in the freed range works.
  EXPECT_TRUE(editor.MapPage(root, 0x4000'1000, 0x9000, kPteP, 0, PageSize::k4K));
}

TEST_F(HwEdgeTest, WalkCountsReferencesExactly) {
  PageTableEditor editor = MakeEditor();
  uint64_t root = Alloc();
  ASSERT_TRUE(editor.MapPage(root, 0x1234'5000, 0x8000, kPteP, 0, PageSize::k4K));
  WalkResult w4k = WalkPageTable(mem_, root, 0x1234'5000);
  EXPECT_EQ(w4k.mem_refs, 4);
  ASSERT_TRUE(editor.MapPage(root, 0x8000'0000, 0x400'0000, kPteP | kPteW, 0, PageSize::k2M));
  WalkResult w2m = WalkPageTable(mem_, root, 0x8000'0000);
  EXPECT_EQ(w2m.mem_refs, 3);
  WalkResult miss = WalkPageTable(mem_, root, 0xFF00'0000'0000);  // untouched PML4 slot
  EXPECT_EQ(miss.mem_refs, 1) << "a missing PML4 entry terminates after one reference";
  WalkResult mid_miss = WalkPageTable(mem_, root, 0xFFFF'0000);  // same PML4 slot as 4K map
  EXPECT_EQ(mid_miss.mem_refs, 2) << "a missing PDPT entry terminates after two references";
}

TEST_F(HwEdgeTest, ForEachLeafVisitsAllLeavesOnce) {
  PageTableEditor editor = MakeEditor();
  uint64_t root = Alloc();
  ASSERT_TRUE(editor.MapPage(root, 0x1000, 0x10'0000, kPteP, 0, PageSize::k4K));
  ASSERT_TRUE(editor.MapPage(root, 0x7f00'0000'0000, 0x20'0000, kPteP, 0, PageSize::k4K));
  ASSERT_TRUE(editor.MapPage(root, 0x4000'0000, 0x40'0000, kPteP, 0, PageSize::k2M));
  int leaves = 0;
  int huge = 0;
  editor.ForEachLeaf(root, [&](uint64_t, uint64_t, uint64_t, int level) {
    leaves++;
    huge += (level == 2) ? 1 : 0;
  });
  EXPECT_EQ(leaves, 3);
  EXPECT_EQ(huge, 1);
}

TEST_F(HwEdgeTest, EptUnmapRestoresViolation) {
  Ept ept(mem_, [this](int) { return Alloc(); });
  uint64_t hpa = Alloc();
  ASSERT_TRUE(ept.Map(0x5000, hpa, PageSize::k4K));
  EXPECT_TRUE(ept.Translate(0x5000).fault.ok());
  ASSERT_TRUE(ept.Unmap(0x5000));
  EXPECT_EQ(ept.Translate(0x5000).fault.type, FaultType::kEptViolation);
  EXPECT_EQ(ept.mapped_pages(), 0u);
}

TEST_F(HwEdgeTest, PteOffsetArithmetic) {
  // The offset within 4K vs 2M leaves must compose correctly.
  PageTableEditor editor = MakeEditor();
  uint64_t root = Alloc();
  ASSERT_TRUE(editor.MapPage(root, 0x4000'0000, 0x800'0000, kPteP, 0, PageSize::k2M));
  WalkResult walk = WalkPageTable(mem_, root, 0x4000'0000 + 0x1F'FFF8);
  ASSERT_TRUE(walk.fault.ok());
  EXPECT_EQ(walk.pa, 0x800'0000u + 0x1F'FFF8u);
}

// --- contract violations fail loudly (failure injection) ---------------------

TEST(HwContractTest, UninstalledFrameAccessThrowsHostFatal) {
  PhysMem mem;
  EXPECT_THROW(mem.WriteU64(0xDEAD'B000, 1), FatalHostError);
  EXPECT_THROW((void)mem.ReadU64(0xDEAD'B000), FatalHostError);
}

TEST(HwContractTest, DoubleFreeIsCountedNotFatal) {
  PhysMem mem;
  FrameAllocator alloc(mem, 0x10'0000, 16);
  uint64_t pa = alloc.AllocFrame(1);
  EXPECT_EQ(alloc.FreeFrame(pa), FreeResult::kOk);
  EXPECT_EQ(alloc.FreeFrame(pa), FreeResult::kDoubleFree);
  EXPECT_EQ(alloc.double_frees(), 1u);
  // The frame stays on the free list exactly once: both of the next two
  // allocations must succeed (capacity was not corrupted).
  EXPECT_NE(alloc.AllocFrame(1), 0u);
}

TEST(HwContractTest, PhysicalExhaustionThrowsHostFatalWithoutBus) {
  PhysMem mem;
  FrameAllocator alloc(mem, 0x10'0000, 2);
  alloc.AllocFrame(1);
  alloc.AllocFrame(1);
  EXPECT_THROW(alloc.AllocFrame(1), FatalHostError);
}

}  // namespace
}  // namespace cki
