// Tests for the host-kernel hypercall service layer: timers, vCPU
// pause/wake, IPIs, pv-clock — the paravirtual semantics behind Table 3's
// "replaced with hypercalls" column.
#include <gtest/gtest.h>

#include "src/host/host_kernel.h"
#include "src/sim/context.h"

namespace cki {
namespace {

TEST(HostKernelTest, PauseAndWake) {
  SimContext ctx;
  HostKernel host(ctx, /*n_vcpus=*/2);
  EXPECT_FALSE(host.vcpu_paused(0));
  host.Dispatch(HypercallOp::kPauseVcpu, 0, 0, /*vcpu=*/0);
  EXPECT_TRUE(host.vcpu_paused(0));
  EXPECT_FALSE(host.vcpu_paused(1));
  host.WakeVcpu(0);
  EXPECT_FALSE(host.vcpu_paused(0));
}

TEST(HostKernelTest, TimersFireInDeadlineOrder) {
  SimContext ctx;
  HostKernel host(ctx, 2);
  host.Dispatch(HypercallOp::kSetTimer, /*deadline=*/500, 0, /*vcpu=*/1);
  host.Dispatch(HypercallOp::kSetTimer, /*deadline=*/200, 0, /*vcpu=*/0);
  EXPECT_EQ(host.armed_timers(), 2u);
  EXPECT_TRUE(host.ExpireTimers().empty());  // t = 0
  ctx.ChargeWork(250);
  std::vector<int> fired = host.ExpireTimers();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 0);
  ctx.ChargeWork(300);
  fired = host.ExpireTimers();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 1);
  EXPECT_EQ(host.armed_timers(), 0u);
}

TEST(HostKernelTest, TimerWakesPausedVcpu) {
  SimContext ctx;
  HostKernel host(ctx, 1);
  host.Dispatch(HypercallOp::kSetTimer, 100, 0, 0);
  host.Dispatch(HypercallOp::kPauseVcpu, 0, 0, 0);  // hlt until the tick
  ASSERT_TRUE(host.vcpu_paused(0));
  ctx.ChargeWork(150);
  host.ExpireTimers();
  EXPECT_FALSE(host.vcpu_paused(0));
}

TEST(HostKernelTest, IpisQueueWakeAndDrain) {
  SimContext ctx;
  HostKernel host(ctx, 4);
  host.Dispatch(HypercallOp::kPauseVcpu, 0, 0, /*vcpu=*/3);
  EXPECT_EQ(host.Dispatch(HypercallOp::kSendIpi, /*dest=*/3, 0, /*vcpu=*/0), 0u);
  EXPECT_EQ(host.Dispatch(HypercallOp::kSendIpi, 3, 0, 1), 0u);
  EXPECT_FALSE(host.vcpu_paused(3)) << "IPIs wake halted vCPUs";
  EXPECT_EQ(host.pending_ipis(3), 2u);
  EXPECT_TRUE(host.TakeIpi(3));
  EXPECT_TRUE(host.TakeIpi(3));
  EXPECT_FALSE(host.TakeIpi(3));
}

TEST(HostKernelTest, IpiToBogusVcpuFails) {
  SimContext ctx;
  HostKernel host(ctx, 2);
  EXPECT_EQ(host.Dispatch(HypercallOp::kSendIpi, /*dest=*/9, 0, 0), ~0ull);
}

TEST(HostKernelTest, PvClockTracksSimTime) {
  SimContext ctx;
  HostKernel host(ctx, 1);
  ctx.ChargeWork(12345);
  EXPECT_EQ(host.PvClockNow(), 12345u);
}

TEST(HostKernelTest, DispatchCountsRequests) {
  SimContext ctx;
  HostKernel host(ctx, 1);
  host.Dispatch(HypercallOp::kNop, 0, 0);
  host.Dispatch(HypercallOp::kYield, 0, 0);
  EXPECT_EQ(host.Dispatch(HypercallOp::kLogByte, 0, 'x'), static_cast<uint64_t>('x'));
  EXPECT_EQ(host.dispatched(), 3u);
}

}  // namespace
}  // namespace cki
