// Workload-level assertions: the application models must produce the
// paper's qualitative results (orderings, overhead bands, crossovers).
// Scaled-down parameters keep the suite fast; the bench binaries run the
// full sizes.
#include <gtest/gtest.h>

#include "src/runtime/runtime.h"
#include "src/workloads/cve_data.h"
#include "src/workloads/kv_store.h"
#include "src/workloads/lmbench.h"
#include "src/workloads/mem_apps.h"
#include "src/workloads/sqlite_bench.h"
#include "src/workloads/tlb_apps.h"

namespace cki {
namespace {

double Normalized(RuntimeKind kind, Deployment dep, const MemAppSpec& spec, double runc) {
  Testbed bed(kind, dep);
  return static_cast<double>(RunMemApp(bed.engine(), spec)) / runc;
}

TEST(MemAppsTest, Figure12OverheadBands) {
  // One representative fault-heavy app, full-size (xsbench).
  const MemAppSpec& spec = MemoryAppSuite()[1];
  Testbed runc(RuntimeKind::kRunc, Deployment::kBareMetal);
  double base = static_cast<double>(RunMemApp(runc.engine(), spec));

  double cki = Normalized(RuntimeKind::kCki, Deployment::kBareMetal, spec, base);
  double pvm = Normalized(RuntimeKind::kPvm, Deployment::kBareMetal, spec, base);
  double hvm_bm = Normalized(RuntimeKind::kHvm, Deployment::kBareMetal, spec, base);
  double hvm_nst = Normalized(RuntimeKind::kHvm, Deployment::kNested, spec, base);

  EXPECT_LT(cki, 1.03) << "CKI must stay within 3% of RunC (sec 7.2)";
  EXPECT_GT(pvm, 1.05);
  EXPECT_GT(hvm_bm, 1.02);
  EXPECT_LT(hvm_bm, 1.25);
  EXPECT_GT(hvm_nst, 1.28) << "nested HVM: +28%..226% (sec 1)";
  EXPECT_LT(hvm_nst, 3.5);
  // Ordering: CKI < HVM-BM < PVM-or-HVM-NST.
  EXPECT_LT(cki, hvm_bm);
  EXPECT_LT(hvm_bm, hvm_nst);
  EXPECT_LT(pvm, hvm_nst);
}

TEST(MemAppsTest, BtreeOverheadFallsWithLookupRatio) {
  auto overhead = [](RuntimeKind kind, double ratio) {
    Testbed runc(RuntimeKind::kRunc, Deployment::kBareMetal);
    double base = static_cast<double>(RunBtreeRatio(runc.engine(), ratio, 4000));
    Testbed bed(kind, Deployment::kBareMetal);
    return static_cast<double>(RunBtreeRatio(bed.engine(), ratio, 4000)) / base;
  };
  EXPECT_GT(overhead(RuntimeKind::kPvm, 0.5), overhead(RuntimeKind::kPvm, 8.0));
  EXPECT_GT(overhead(RuntimeKind::kHvm, 0.5), overhead(RuntimeKind::kHvm, 8.0));
}

TEST(TlbAppsTest, GupsReproducesTable4Gap) {
  Testbed runc(RuntimeKind::kRunc, Deployment::kBareMetal);
  Testbed hvm(RuntimeKind::kHvm, Deployment::kBareMetal);
  Testbed cki(RuntimeKind::kCki, Deployment::kBareMetal);
  TlbAppResult r_runc = RunGups(runc.engine(), 30000, 16384);
  TlbAppResult r_hvm = RunGups(hvm.engine(), 30000, 16384);
  TlbAppResult r_cki = RunGups(cki.engine(), 30000, 16384);
  double gap = static_cast<double>(r_hvm.elapsed) / static_cast<double>(r_runc.elapsed);
  EXPECT_GT(gap, 1.10) << "HVM must pay the 2-D walk (paper: ~1.24x)";
  EXPECT_LT(gap, 1.35);
  double cki_gap = static_cast<double>(r_cki.elapsed) / static_cast<double>(r_runc.elapsed);
  EXPECT_NEAR(cki_gap, 1.0, 0.02) << "CKI has no second translation stage";
  EXPECT_GT(r_runc.tlb_misses, r_runc.tlb_hits) << "GUPS must be TLB-miss bound";
}

TEST(SqliteTest, PvmLosesOnWritePatternsOnly) {
  const SqlitePattern& fillseq = SqliteSuite()[0];
  const SqlitePattern& readrandom = SqliteSuite()[6];
  Testbed runc(RuntimeKind::kRunc, Deployment::kBareMetal);
  Testbed pvm(RuntimeKind::kPvm, Deployment::kBareMetal);
  Testbed cki(RuntimeKind::kCki, Deployment::kBareMetal);

  double runc_w = RunSqlitePattern(runc.engine(), fillseq).ops_per_sec;
  double pvm_w = RunSqlitePattern(pvm.engine(), fillseq).ops_per_sec;
  double cki_w = RunSqlitePattern(cki.engine(), fillseq).ops_per_sec;
  EXPECT_LT(pvm_w, 0.85 * runc_w) << "PVM loses 19-24% on writes (C2)";
  EXPECT_GT(pvm_w, 0.70 * runc_w);
  EXPECT_GT(cki_w, 0.97 * runc_w) << "CKI matches RunC";
  EXPECT_GT(cki_w / pvm_w, 1.15) << "C2: CKI up to ~24% over PVM";

  double runc_r = RunSqlitePattern(runc.engine(), readrandom).ops_per_sec;
  double pvm_r = RunSqlitePattern(pvm.engine(), readrandom).ops_per_sec;
  EXPECT_GT(pvm_r, 0.95 * runc_r) << "reads show no significant gap";
}

TEST(KvStoreTest, Figure16Orderings) {
  auto tput = [](RuntimeKind kind, Deployment dep, KvKind kv) {
    Testbed bed(kind, dep);
    KvConfig config{.kind = kv, .clients = 16, .total_requests = 800};
    return RunKvBenchmark(bed.engine(), config).requests_per_sec;
  };
  double cki_nst = tput(RuntimeKind::kCki, Deployment::kNested, KvKind::kMemcached);
  double hvm_nst = tput(RuntimeKind::kHvm, Deployment::kNested, KvKind::kMemcached);
  double pvm_nst = tput(RuntimeKind::kPvm, Deployment::kNested, KvKind::kMemcached);
  EXPECT_GT(cki_nst / hvm_nst, 4.0) << "C3: CKI-NST >> HVM-NST on memcached (paper 6.8x)";
  EXPECT_GT(cki_nst / pvm_nst, 1.3) << "C3: CKI-NST > PVM-NST (paper 1.5x)";

  double cki_r = tput(RuntimeKind::kCki, Deployment::kNested, KvKind::kRedis);
  double hvm_r = tput(RuntimeKind::kHvm, Deployment::kNested, KvKind::kRedis);
  double mem_ratio = cki_nst / hvm_nst;
  double redis_ratio = cki_r / hvm_r;
  EXPECT_GT(redis_ratio, 1.5) << "paper: 2.0x on redis";
  EXPECT_LT(redis_ratio, mem_ratio)
      << "redis's heavier per-request work dilutes the virtualization tax";
}

TEST(KvStoreTest, ThroughputGrowsWithClientsAndSaturates) {
  Testbed bed(RuntimeKind::kHvm, Deployment::kNested);
  KvConfig c1{.kind = KvKind::kMemcached, .clients = 1, .total_requests = 400};
  double t1 = RunKvBenchmark(bed.engine(), c1).requests_per_sec;
  Testbed bed2(RuntimeKind::kHvm, Deployment::kNested);
  KvConfig c16{.kind = KvKind::kMemcached, .clients = 16, .total_requests = 400};
  double t16 = RunKvBenchmark(bed2.engine(), c16).requests_per_sec;
  EXPECT_GT(t16, t1) << "batching must lift throughput with more clients";
}

TEST(LmbenchTest, PvmShortSyscallsRoughlyDouble) {
  Testbed runc(RuntimeKind::kRunc, Deployment::kBareMetal);
  Testbed pvm(RuntimeKind::kPvm, Deployment::kBareMetal);
  double base = static_cast<double>(RunLmbenchOp(runc.engine(), LmbenchOp::kRead));
  double redirected = static_cast<double>(RunLmbenchOp(pvm.engine(), LmbenchOp::kRead));
  EXPECT_GT(redirected / base, 1.5) << "paper: ~2x on short syscalls";
  EXPECT_LT(redirected / base, 2.5);
}

TEST(LmbenchTest, HvmMatchesRuncOffTheFaultPaths) {
  Testbed runc(RuntimeKind::kRunc, Deployment::kBareMetal);
  Testbed hvm(RuntimeKind::kHvm, Deployment::kBareMetal);
  for (LmbenchOp op : {LmbenchOp::kRead, LmbenchOp::kStat, LmbenchOp::kCtxSwitch2p}) {
    double base = static_cast<double>(RunLmbenchOp(runc.engine(), op));
    double hvm_ns = static_cast<double>(RunLmbenchOp(hvm.engine(), op));
    EXPECT_NEAR(hvm_ns / base, 1.0, 0.05) << LmbenchOpName(op);
  }
}

TEST(CveDataTest, MatchesFigure2) {
  int total = 0;
  for (const CveClass& c : CveClasses()) {
    total += c.count;
  }
  EXPECT_EQ(total, kCveTotal);
  EXPECT_NEAR(DosShare(), 0.973, 0.005);
  for (const CveClass& c : CveClasses()) {
    EXPECT_TRUE(ContainedByKernelSeparation(c));
    EXPECT_EQ(ContainedByKernelSharing(c), !c.dos_capable);
  }
}

}  // namespace
}  // namespace cki
