// Differential testing: all container designs must be *functionally*
// indistinguishable (the paper's compatibility claim — CKI supports the
// same guest feature set as software virtualization). A randomized syscall/
// memory-op sequence is executed on every engine, and every return value
// and touch outcome must match the RunC reference exactly.
#include <gtest/gtest.h>

#include <sstream>

#include "src/runtime/runtime.h"
#include "src/sim/rng.h"

namespace cki {
namespace {

// One operation of the random program.
struct Op {
  enum Kind { kSyscall, kTouch } kind;
  SyscallRequest req;
  uint64_t touch_offset;  // relative to the arena
  bool touch_write;
};

// Deterministically generates a program of mixed operations.
std::vector<Op> GenerateProgram(uint64_t seed, int length) {
  Rng rng(seed);
  std::vector<Op> ops;
  ops.reserve(static_cast<size_t>(length));
  for (int i = 0; i < length; ++i) {
    switch (rng.NextBelow(10)) {
      case 0:
        ops.push_back({Op::kSyscall, {.no = Sys::kGetpid}, 0, false});
        break;
      case 1:
        ops.push_back({Op::kSyscall,
                       {.no = Sys::kOpen, .arg0 = rng.NextBelow(4)},
                       0,
                       false});
        break;
      case 2:
        ops.push_back({Op::kSyscall,
                       {.no = Sys::kWrite, .arg0 = 3 + rng.NextBelow(3),
                        .arg1 = 1 + rng.NextBelow(8192)},
                       0,
                       false});
        break;
      case 3:
        ops.push_back({Op::kSyscall,
                       {.no = Sys::kPread, .arg0 = 3 + rng.NextBelow(3),
                        .arg1 = 1 + rng.NextBelow(4096), .arg2 = rng.NextBelow(8192)},
                       0,
                       false});
        break;
      case 4:
        ops.push_back({Op::kSyscall,
                       {.no = Sys::kMprotect, .arg0 = rng.NextBelow(16) * kPageSize,
                        .arg1 = kPageSize,
                        .arg2 = rng.NextBool(0.5) ? kProtRead : (kProtRead | kProtWrite)},
                       0,
                       false});
        break;
      case 5:
        ops.push_back({Op::kSyscall, {.no = Sys::kStat, .arg0 = rng.NextBelow(4)}, 0, false});
        break;
      case 6:
        ops.push_back({Op::kSyscall, {.no = Sys::kBrk, .arg0 = 0}, 0, false});
        break;
      default:
        ops.push_back(
            {Op::kTouch, {}, rng.NextBelow(16 * kPageSize - 8), rng.NextBool(0.5)});
        break;
    }
  }
  return ops;
}

// Executes the program and returns a transcript of every outcome.
std::string ExecuteProgram(ContainerEngine& engine, const std::vector<Op>& ops) {
  std::ostringstream transcript;
  // Fixed arena at a deterministic location: all engines place the first
  // mmap at the same guest VA.
  uint64_t arena = engine.MmapAnon(16 * kPageSize, /*populate=*/false);
  transcript << "arena@" << std::hex << arena << std::dec << "\n";
  for (const Op& op : ops) {
    if (op.kind == Op::kSyscall) {
      SyscallRequest req = op.req;
      if (req.no == Sys::kMprotect) {
        req.arg0 += arena;
      }
      SyscallResult r = engine.UserSyscall(req);
      transcript << SysName(req.no) << "=" << r.value << "\n";
    } else {
      TouchResult r = engine.UserTouch(arena + op.touch_offset, op.touch_write);
      transcript << "touch+" << op.touch_offset << (op.touch_write ? "w" : "r") << "="
                 << (r == TouchResult::kOk ? "ok" : "segv") << "\n";
    }
  }
  return transcript.str();
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, AllDesignsAgreeWithRunc) {
  std::vector<Op> program = GenerateProgram(GetParam(), 300);
  Testbed reference(RuntimeKind::kRunc, Deployment::kBareMetal);
  std::string expected = ExecuteProgram(reference.engine(), program);

  const std::pair<RuntimeKind, Deployment> designs[] = {
      {RuntimeKind::kHvm, Deployment::kBareMetal},
      {RuntimeKind::kHvm, Deployment::kNested},
      {RuntimeKind::kPvm, Deployment::kBareMetal},
      {RuntimeKind::kPvm, Deployment::kNested},
      {RuntimeKind::kCki, Deployment::kBareMetal},
      {RuntimeKind::kCki, Deployment::kNested},
      {RuntimeKind::kCkiNoOpt2, Deployment::kBareMetal},
      {RuntimeKind::kCkiNoOpt3, Deployment::kBareMetal},
      {RuntimeKind::kGvisor, Deployment::kBareMetal},
  };
  for (auto [kind, dep] : designs) {
    Testbed bed(kind, dep);
    std::string got = ExecuteProgram(bed.engine(), program);
    EXPECT_EQ(got, expected) << RuntimeKindName(kind)
                             << (dep == Deployment::kNested ? " (nested)" : "");
  }
}

TEST_P(DifferentialTest, ProcessLifecycleAgrees) {
  // fork/exit/wait interleavings (excluding LibOS, which rejects fork).
  Rng rng(GetParam() * 17 + 3);
  const std::pair<RuntimeKind, Deployment> designs[] = {
      {RuntimeKind::kRunc, Deployment::kBareMetal},
      {RuntimeKind::kPvm, Deployment::kBareMetal},
      {RuntimeKind::kCki, Deployment::kBareMetal},
      {RuntimeKind::kHvm, Deployment::kNested},
  };
  std::string reference;
  for (size_t d = 0; d < std::size(designs); ++d) {
    Rng local(GetParam() * 17 + 3);
    Testbed bed(designs[d].first, designs[d].second);
    ContainerEngine& engine = bed.engine();
    std::ostringstream transcript;
    for (int i = 0; i < 12; ++i) {
      SyscallResult child = engine.UserSyscall(SyscallRequest{.no = Sys::kFork});
      transcript << "fork=" << child.value << "\n";
      if (local.NextBool(0.7) && child.ok()) {
        engine.kernel().SwitchTo(static_cast<int>(child.value));
        uint64_t heap = engine.MmapAnon(4 * kPageSize, local.NextBool(0.5));
        transcript << "childheap=" << std::hex << heap << std::dec << "\n";
        transcript << "exit=" << engine.UserSyscall(SyscallRequest{.no = Sys::kExit}).value
                   << "\n";
        transcript << "wait=" << engine.UserSyscall(SyscallRequest{.no = Sys::kWaitpid}).value
                   << "\n";
      }
    }
    if (d == 0) {
      reference = transcript.str();
    } else {
      EXPECT_EQ(transcript.str(), reference) << RuntimeKindName(designs[d].first);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(11u, 222u, 3333u, 44444u, 555555u));

}  // namespace
}  // namespace cki
