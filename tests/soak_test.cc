// Soak tests: long mixed-operation runs that must leave the system balanced
// — no physical-frame leaks across process lifecycles, no monitor-state
// drift, stable TLB occupancy. These catch teardown bugs the short
// functional tests miss.
#include <gtest/gtest.h>

#include "src/cki/cki_engine.h"
#include "src/cki/ksm_audit.h"
#include "src/fault/fault_injector.h"
#include "src/runtime/runtime.h"
#include "src/sim/rng.h"

namespace cki {
namespace {

class SoakTest : public ::testing::TestWithParam<RuntimeKind> {};

TEST_P(SoakTest, ForkExitCyclesDoNotLeakMemory) {
  Testbed bed(GetParam(), Deployment::kBareMetal);
  ContainerEngine& engine = bed.engine();
  GuestKernel& kernel = engine.kernel();

  // Warm one full cycle so lazily-created structures (shadow roots, page
  // cache, free lists) exist, then measure steady state.
  auto cycle = [&](int heap_pages) {
    SyscallResult child = engine.UserSyscall(SyscallRequest{.no = Sys::kFork});
    ASSERT_TRUE(child.ok());
    kernel.SwitchTo(static_cast<int>(child.value));
    uint64_t heap =
        engine.MmapAnon(static_cast<uint64_t>(heap_pages) * kPageSize, /*populate=*/false);
    for (int i = 0; i < heap_pages; ++i) {
      ASSERT_EQ(engine.UserTouch(heap + static_cast<uint64_t>(i) * kPageSize, true),
                TouchResult::kOk);
    }
    ASSERT_TRUE(engine.UserSyscall(SyscallRequest{.no = Sys::kExit}).ok());
    ASSERT_GT(engine.UserSyscall(SyscallRequest{.no = Sys::kWaitpid}).value, 0);
  };
  cycle(16);

  uint64_t frames_baseline = bed.machine().frames().allocated_frames();
  size_t procs_baseline = kernel.live_processes();
  for (int round = 0; round < 20; ++round) {
    cycle(8 + round % 16);
  }
  EXPECT_EQ(kernel.live_processes(), procs_baseline);
  uint64_t frames_after = bed.machine().frames().allocated_frames();
  // CKI allocates from its pre-committed segment (host frames constant);
  // other designs must return to within a small slack of the baseline
  // (PVM keeps shadow intermediate tables for reuse).
  EXPECT_LE(frames_after, frames_baseline + 64)
      << "frame leak across fork/exit cycles: " << frames_baseline << " -> " << frames_after;
}

TEST_P(SoakTest, MmapMunmapChurnIsBalanced) {
  Testbed bed(GetParam(), Deployment::kBareMetal);
  ContainerEngine& engine = bed.engine();
  Rng rng(99);
  // Steady-state churn: map, touch some pages, unmap.
  auto churn = [&] {
    uint64_t pages = 4 + rng.NextBelow(32);
    uint64_t base = engine.MmapAnon(pages * kPageSize, false);
    for (uint64_t i = 0; i < pages; i += 2) {
      ASSERT_EQ(engine.UserTouch(base + i * kPageSize, true), TouchResult::kOk);
    }
    ASSERT_TRUE(engine
                    .UserSyscall(SyscallRequest{
                        .no = Sys::kMunmap, .arg0 = base, .arg1 = pages * kPageSize})
                    .ok());
  };
  churn();
  uint64_t baseline = bed.machine().frames().allocated_frames();
  for (int i = 0; i < 50; ++i) {
    churn();
  }
  EXPECT_LE(bed.machine().frames().allocated_frames(), baseline + 48)
      << "data frames must recycle through the free lists";
}

TEST_P(SoakTest, RandomOpSoakStaysFunctional) {
  Testbed bed(GetParam(), Deployment::kBareMetal);
  ContainerEngine& engine = bed.engine();
  Rng rng(2024);
  uint64_t arena = engine.MmapAnon(64 * kPageSize, false);
  int failures = 0;
  for (int i = 0; i < 3000; ++i) {
    switch (rng.NextBelow(5)) {
      case 0:
        failures += engine.UserSyscall(SyscallRequest{.no = Sys::kGetpid}).ok() ? 0 : 1;
        break;
      case 1:
        failures += engine.UserTouch(arena + rng.NextBelow(64) * kPageSize, true) ==
                            TouchResult::kOk
                        ? 0
                        : 1;
        break;
      case 2: {
        SyscallResult fd = engine.UserSyscall(
            SyscallRequest{.no = Sys::kOpen, .arg0 = rng.NextBelow(8)});
        failures += fd.ok() ? 0 : 1;
        engine.UserSyscall(SyscallRequest{
            .no = Sys::kWrite, .arg0 = static_cast<uint64_t>(fd.value), .arg1 = 100});
        engine.UserSyscall(
            SyscallRequest{.no = Sys::kClose, .arg0 = static_cast<uint64_t>(fd.value)});
        break;
      }
      case 3:
        engine.UserSyscall(SyscallRequest{.no = Sys::kMprotect,
                                          .arg0 = arena + rng.NextBelow(64) * kPageSize,
                                          .arg1 = kPageSize,
                                          .arg2 = kProtRead | kProtWrite});
        break;
      case 4:
        engine.GuestHypercall(HypercallOp::kNop);
        break;
    }
  }
  EXPECT_EQ(failures, 0);
}

TEST_P(SoakTest, ChaosInjectionNeverAborts) {
  // Chaos soak: run the mixed workload with the deterministic fault
  // injector armed. Individual ops may fail (that is the point) and the
  // container may even be killed, but the process must never abort and
  // every failure must surface as a typed error return.
  Testbed bed(GetParam(), Deployment::kBareMetal);
  ContainerEngine& engine = bed.engine();
  InjectorConfig config;
  config.seed = 7;
  config.pks_violation_rate = 0.01;
  config.pte_flip_rate = 0.005;
  config.segment_oom_rate = 0.01;
  FaultInjector injector(config);
  engine.set_injector(&injector);

  uint64_t arena = engine.MmapAnon(32 * kPageSize, /*populate=*/false);
  Rng rng(11);
  int completed = 0;
  for (int i = 0; i < 2000; ++i) {
    switch (rng.NextBelow(3)) {
      case 0:
        engine.UserSyscall(SyscallRequest{.no = Sys::kGetpid});
        break;
      case 1:
        engine.UserTouch(arena + rng.NextBelow(32) * kPageSize, true);
        break;
      case 2:
        engine.MmapAnon(4 * kPageSize, /*populate=*/true);
        break;
    }
    completed++;
    if (!engine.alive()) {
      break;  // killed by its own fault domain — contained, not fatal
    }
  }
  EXPECT_GT(completed, 0);
  EXPECT_GE(injector.draws(), 1u) << "the injector must actually be armed";
  if (!engine.alive()) {
    // A killed container's resources are swept; errors stay typed.
    EXPECT_EQ(bed.machine().frames().OwnedFrames(engine.id()), 0u);
    EXPECT_EQ(engine.UserSyscall(SyscallRequest{.no = Sys::kGetpid}).value, kEKILLED);
  }
}

TEST(SoakTestCki, MonitorStateStaysExactAcrossChurn) {
  Testbed bed(RuntimeKind::kCki, Deployment::kBareMetal);
  auto& engine = static_cast<CkiEngine&>(bed.engine());
  GuestKernel& kernel = engine.kernel();
  // Every process lifecycle declares and undeclares PTPs; counts must
  // return to the pre-cycle value and nothing may ever be rejected.
  for (int round = 0; round < 10; ++round) {
    uint64_t declared_before = engine.ksm().monitor().declared_ptps();
    SyscallResult child = engine.UserSyscall(SyscallRequest{.no = Sys::kFork});
    ASSERT_TRUE(child.ok());
    kernel.SwitchTo(static_cast<int>(child.value));
    uint64_t heap = engine.MmapAnon(32 * kPageSize, true);
    (void)heap;
    ASSERT_TRUE(engine.UserSyscall(SyscallRequest{.no = Sys::kExecve}).ok());
    ASSERT_TRUE(engine.UserSyscall(SyscallRequest{.no = Sys::kExit}).ok());
    ASSERT_GT(engine.UserSyscall(SyscallRequest{.no = Sys::kWaitpid}).value, 0);
    EXPECT_EQ(engine.ksm().monitor().declared_ptps(), declared_before) << "round " << round;
  }
  EXPECT_EQ(engine.ksm().monitor().rejected_stores(), 0u)
      << "legitimate kernel operation must never trip the monitor";
  // Full fsck-style audit of the live page-table state after the churn.
  AuditReport audit = AuditContainer(engine);
  EXPECT_TRUE(audit.clean()) << audit.violations.front();
  EXPECT_GT(audit.entries_checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(Engines, SoakTest,
                         ::testing::Values(RuntimeKind::kRunc, RuntimeKind::kHvm,
                                           RuntimeKind::kPvm, RuntimeKind::kCki,
                                           RuntimeKind::kGvisor),
                         [](const ::testing::TestParamInfo<RuntimeKind>& param_info) {
                           return std::string(RuntimeKindName(param_info.param));
                         });

}  // namespace
}  // namespace cki
