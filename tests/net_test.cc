// Tests for the packet-level network subsystem: vswitch forwarding and
// backpressure, VirtNic connection handling (listen/accept/connect,
// backlog, errno surface), NAPI interrupt coalescing, deterministic packet
// traces, and the metrics export used by --json-out.
#include <gtest/gtest.h>

#include <string_view>

#include "src/fault/fault_injector.h"
#include "src/fault/gray_fault.h"
#include "src/net/load_gen.h"
#include "src/net/virt_nic.h"
#include "src/net/vswitch.h"
#include "src/obs/metrics_registry.h"
#include "src/runtime/runtime.h"
#include "src/workloads/kv_store.h"
#include "src/workloads/service_chain.h"

namespace cki {
namespace {

// --- syscall name table ---------------------------------------------------

TEST(NetTest, SysNameTableIsTotal) {
  EXPECT_EQ(SysName(Sys::kListen), "listen");
  EXPECT_EQ(SysName(Sys::kAccept), "accept");
  EXPECT_EQ(SysName(Sys::kConnect), "connect");
  EXPECT_EQ(SysName(Sys::kGetpid), "getpid");
  for (size_t i = 0; i < static_cast<size_t>(Sys::kCount); ++i) {
    EXPECT_FALSE(SysName(static_cast<Sys>(i)).empty());
  }
}

// --- connection layer through the guest syscall surface -------------------

TEST(NetTest, ListenRebindReturnsAddrInUse) {
  Testbed bed(RuntimeKind::kRunc, Deployment::kBareMetal);
  VSwitch sw(bed.ctx());
  VirtNic nic(bed.engine(), sw, "eth0");
  bed.engine().kernel().set_net(&nic);
  SyscallResult first = bed.engine().UserSyscall(
      SyscallRequest{.no = Sys::kListen, .arg0 = 80, .arg1 = 8});
  EXPECT_TRUE(first.ok());
  SyscallResult again = bed.engine().UserSyscall(
      SyscallRequest{.no = Sys::kListen, .arg0 = 80, .arg1 = 8});
  EXPECT_EQ(again.value, kEADDRINUSE);
  bed.engine().kernel().set_net(nullptr);
}

TEST(NetTest, AcceptOnEmptyBacklogReturnsEagain) {
  Testbed bed(RuntimeKind::kRunc, Deployment::kBareMetal);
  VSwitch sw(bed.ctx());
  VirtNic nic(bed.engine(), sw, "eth0");
  bed.engine().kernel().set_net(&nic);
  SyscallResult lfd = bed.engine().UserSyscall(
      SyscallRequest{.no = Sys::kListen, .arg0 = 80, .arg1 = 8});
  ASSERT_TRUE(lfd.ok());
  SyscallResult conn = bed.engine().UserSyscall(
      SyscallRequest{.no = Sys::kAccept, .arg0 = static_cast<uint64_t>(lfd.value)});
  EXPECT_EQ(conn.value, kEAGAIN);
  bed.engine().kernel().set_net(nullptr);
}

TEST(NetTest, ConnectToUnboundServiceIsRefused) {
  Testbed bed(RuntimeKind::kRunc, Deployment::kBareMetal);
  VSwitch sw(bed.ctx());
  VirtNic nic(bed.engine(), sw, "eth0");
  LoadGenerator gen(bed.ctx(), sw, "client");
  // Nothing listens on service 443: the NIC answers the SYN with RST.
  EXPECT_EQ(gen.Connect(nic.port(), 443), kECONNREFUSED);
  EXPECT_EQ(nic.stats().refused_conns, 1u);
}

TEST(NetTest, BacklogOverflowRefusesUntilAcceptFreesASlot) {
  Testbed bed(RuntimeKind::kRunc, Deployment::kBareMetal);
  VSwitch sw(bed.ctx());
  VirtNic nic(bed.engine(), sw, "eth0");
  LoadGenerator gen(bed.ctx(), sw, "client");
  bed.engine().kernel().set_net(&nic);
  SyscallResult lfd = bed.engine().UserSyscall(
      SyscallRequest{.no = Sys::kListen, .arg0 = 80, .arg1 = 1});
  ASSERT_TRUE(lfd.ok());

  EXPECT_GT(gen.Connect(nic.port(), 80), 0);        // fills the backlog
  // Overflow is a TRANSIENT refusal (kEBUSY, retryable): the listener
  // exists, it is just momentarily full — unlike the structural
  // kECONNREFUSED for a service nobody listens on.
  EXPECT_EQ(gen.Connect(nic.port(), 80), kEBUSY);
  EXPECT_EQ(nic.stats().refused_conns, 1u);

  SyscallResult sock = bed.engine().UserSyscall(
      SyscallRequest{.no = Sys::kAccept, .arg0 = static_cast<uint64_t>(lfd.value)});
  EXPECT_TRUE(sock.ok());
  EXPECT_GT(gen.Connect(nic.port(), 80), 0);  // accept freed the slot
  bed.engine().kernel().set_net(nullptr);
}

TEST(NetTest, RecvfromOnIdleSocketReturnsEagain) {
  Testbed bed(RuntimeKind::kRunc, Deployment::kBareMetal);
  VSwitch sw(bed.ctx());
  VirtNic nic(bed.engine(), sw, "eth0");
  LoadGenerator gen(bed.ctx(), sw, "client");
  bed.engine().kernel().set_net(&nic);
  SyscallResult lfd = bed.engine().UserSyscall(
      SyscallRequest{.no = Sys::kListen, .arg0 = 80, .arg1 = 8});
  ASSERT_TRUE(lfd.ok());
  ASSERT_GT(gen.Connect(nic.port(), 80), 0);
  SyscallResult sock = bed.engine().UserSyscall(
      SyscallRequest{.no = Sys::kAccept, .arg0 = static_cast<uint64_t>(lfd.value)});
  ASSERT_TRUE(sock.ok());
  SyscallResult got = bed.engine().UserSyscall(SyscallRequest{
      .no = Sys::kRecvfrom, .arg0 = static_cast<uint64_t>(sock.value), .arg1 = 512});
  EXPECT_EQ(got.value, kEAGAIN);
  bed.engine().kernel().set_net(nullptr);
}

TEST(NetTest, EpollSeesReadinessAcrossConnections) {
  Testbed bed(RuntimeKind::kRunc, Deployment::kBareMetal);
  VSwitch sw(bed.ctx());
  VirtNic nic(bed.engine(), sw, "eth0");
  LoadGenerator gen(bed.ctx(), sw, "client");
  bed.engine().kernel().set_net(&nic);
  SyscallResult lfd = bed.engine().UserSyscall(
      SyscallRequest{.no = Sys::kListen, .arg0 = 80, .arg1 = 8});
  ASSERT_TRUE(lfd.ok());
  int64_t flows[2];
  int64_t socks[2];
  for (int i = 0; i < 2; ++i) {
    flows[i] = gen.Connect(nic.port(), 80);
    ASSERT_GT(flows[i], 0);
    SyscallResult sock = bed.engine().UserSyscall(
        SyscallRequest{.no = Sys::kAccept, .arg0 = static_cast<uint64_t>(lfd.value)});
    ASSERT_TRUE(sock.ok());
    socks[i] = sock.value;
  }

  // All connections accepted, no data in flight: nothing is ready.
  EXPECT_EQ(bed.engine().UserSyscall(SyscallRequest{.no = Sys::kEpollWait}).value, 0);

  // Data on the second connection only: epoll reports readiness, the right
  // socket has the bytes, and draining it returns the loop to quiescence.
  gen.SendRequests(static_cast<int>(flows[1]), 1, 300);
  EXPECT_EQ(bed.engine().UserSyscall(SyscallRequest{.no = Sys::kEpollWait}).value, 1);
  EXPECT_EQ(bed.engine()
                .UserSyscall(SyscallRequest{.no = Sys::kRecvfrom,
                                            .arg0 = static_cast<uint64_t>(socks[0]),
                                            .arg1 = 512})
                .value,
            kEAGAIN);
  EXPECT_EQ(bed.engine()
                .UserSyscall(SyscallRequest{.no = Sys::kRecvfrom,
                                            .arg0 = static_cast<uint64_t>(socks[1]),
                                            .arg1 = 512})
                .value,
            300);
  EXPECT_EQ(bed.engine().UserSyscall(SyscallRequest{.no = Sys::kEpollWait}).value, 0);
  bed.engine().kernel().set_net(nullptr);
}

// --- guest-to-guest connections on one machine ----------------------------

TEST(NetTest, GuestToGuestConnectionAccountsBytesPerDirection) {
  Machine machine(MachineConfigFor(RuntimeKind::kRunc, Deployment::kBareMetal));
  auto server = MakeEngine(machine, RuntimeKind::kRunc);
  server->Boot();
  auto client = MakeEngine(machine, RuntimeKind::kRunc);
  client->Boot();

  VSwitch sw(machine.ctx());
  VirtNic server_nic(*server, sw, "srv0");
  VirtNic client_nic(*client, sw, "cli0");
  server->kernel().set_net(&server_nic);
  client->kernel().set_net(&client_nic);

  SyscallResult lfd = server->UserSyscall(
      SyscallRequest{.no = Sys::kListen, .arg0 = 6379, .arg1 = 4});
  ASSERT_TRUE(lfd.ok());
  SyscallResult cfd = client->UserSyscall(
      SyscallRequest{.no = Sys::kConnect,
                     .arg0 = static_cast<uint64_t>(server_nic.port()),
                     .arg1 = 6379});
  ASSERT_TRUE(cfd.ok());
  SyscallResult sfd = server->UserSyscall(
      SyscallRequest{.no = Sys::kAccept, .arg0 = static_cast<uint64_t>(lfd.value)});
  ASSERT_TRUE(sfd.ok());

  // Request goes client -> server, a larger response comes back.
  EXPECT_EQ(client
                ->UserSyscall(SyscallRequest{.no = Sys::kSendto,
                                             .arg0 = static_cast<uint64_t>(cfd.value),
                                             .arg1 = 200})
                .value,
            200);
  EXPECT_EQ(server->UserSyscall(SyscallRequest{.no = Sys::kEpollWait}).value, 1);
  EXPECT_EQ(server
                ->UserSyscall(SyscallRequest{.no = Sys::kRecvfrom,
                                             .arg0 = static_cast<uint64_t>(sfd.value),
                                             .arg1 = 200})
                .value,
            200);
  EXPECT_EQ(server
                ->UserSyscall(SyscallRequest{.no = Sys::kSendto,
                                             .arg0 = static_cast<uint64_t>(sfd.value),
                                             .arg1 = 1000})
                .value,
            1000);
  EXPECT_EQ(client
                ->UserSyscall(SyscallRequest{.no = Sys::kRecvfrom,
                                             .arg0 = static_cast<uint64_t>(cfd.value),
                                             .arg1 = 1000})
                .value,
            1000);

  // Data-byte accounting per NIC and direction (SYN/SYN-ACK carry 0 bytes).
  EXPECT_EQ(client_nic.stats().tx_bytes, 200u);
  EXPECT_EQ(server_nic.stats().rx_bytes, 200u);
  EXPECT_EQ(server_nic.stats().tx_bytes, 1000u);
  EXPECT_EQ(client_nic.stats().rx_bytes, 1000u);
  EXPECT_EQ(server_nic.stats().accepted_conns, 1u);

  server->kernel().set_net(nullptr);
  client->kernel().set_net(nullptr);
}

// --- switch backpressure --------------------------------------------------

TEST(NetTest, FullRxRingQueuesThenDropsAtPortCapacity) {
  Testbed bed(RuntimeKind::kRunc, Deployment::kBareMetal);
  VSwitch sw(bed.ctx(), LinkConfig{.port_queue_capacity = 2});
  VirtNic nic(bed.engine(), sw, "eth0", NicConfig{.rx_ring = 1});
  LoadGenerator gen(bed.ctx(), sw, "client");
  nic.OpenRawFlow(7, gen.port());

  for (int i = 0; i < 5; ++i) {
    sw.Send(Packet{.src = gen.port(), .dst = nic.port(), .flow = 7, .bytes = 100});
  }
  // One frame in the RX ring, two parked in the port FIFO, two dropped.
  const SwitchPortStats& st = sw.port_stats(nic.port());
  EXPECT_EQ(st.rx_packets, 1u);
  EXPECT_EQ(sw.port_queue_depth(nic.port()), 2u);
  EXPECT_EQ(st.drops, 2u);

  // Draining the ring pulls the queued frames back in; drops stay lost.
  uint64_t received = 0;
  while (nic.Receive(7, 100) > 0) {
    received++;
  }
  EXPECT_EQ(received, 3u);
  EXPECT_EQ(sw.port_queue_depth(nic.port()), 0u);
  EXPECT_EQ(nic.stats().rx_packets, 3u);
}

// --- NAPI coalescing ------------------------------------------------------

TEST(NetTest, ConcurrencyCoalescesInterruptsPerRequest) {
  auto interrupts_per_request = [](int clients) {
    Testbed bed(RuntimeKind::kCki, Deployment::kBareMetal);
    KvConfig kv{.kind = KvKind::kMemcached, .clients = clients, .total_requests = 1024};
    KvResult r = RunKvBenchmark(bed.engine(), kv);
    return static_cast<double>(r.interrupts) / 1024.0;
  };
  double solo = interrupts_per_request(1);
  double packed = interrupts_per_request(16);
  EXPECT_GT(solo, packed * 2);  // batches ride one pending IRQ
}

// --- deterministic replay -------------------------------------------------

ChainResult RunChainWithSeed(uint64_t seed) {
  Machine machine(MachineConfigFor(RuntimeKind::kCki, Deployment::kBareMetal));
  auto proxy = MakeEngine(machine, RuntimeKind::kCki);
  proxy->Boot();
  auto backend = MakeEngine(machine, RuntimeKind::kCki);
  backend->Boot();
  ChainConfig config{.concurrency = 8, .total_requests = 256, .seed = seed};
  return RunServiceChain(*proxy, *backend, config);
}

TEST(NetTest, SameSeedReplaysIdenticalPacketTrace) {
  ChainResult a = RunChainWithSeed(42);
  ChainResult b = RunChainWithSeed(42);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.switch_packets, b.switch_packets);
  EXPECT_EQ(a.elapsed_ns, b.elapsed_ns);
  EXPECT_EQ(a.served, b.served);

  ChainResult c = RunChainWithSeed(43);
  EXPECT_NE(a.trace_hash, c.trace_hash);  // jittered sizes change the trace
  EXPECT_EQ(a.switch_packets, c.switch_packets);  // ... but not the schedule
}

// --- gray failures on the switch (DESIGN.md §13) --------------------------

struct GrayRun {
  uint64_t switch_hash = 0;
  uint64_t gray_hash = 0;
  uint64_t gray_drops = 0;
  SimNanos elapsed_ns = 0;
};

// Raw-flow burst through a switch with an open blackhole + latency
// episode; everything observable about the run is a pure function of the
// two seeds.
GrayRun RunGrayBurst(uint64_t injector_seed, uint64_t gray_seed) {
  Testbed bed(RuntimeKind::kRunc, Deployment::kBareMetal);
  VSwitch sw(bed.ctx());
  VirtNic nic(bed.engine(), sw, "eth0", NicConfig{.rx_ring = 128});
  LoadGenerator gen(bed.ctx(), sw, "client");
  nic.OpenRawFlow(7, gen.port());

  InjectorConfig ic;
  ic.seed = injector_seed;
  ic.packet_blackhole_rate = 1.0;   // first draw opens the episode
  ic.latency_inflation_rate = 1.0;  // ... and the 3x hop-latency episode
  FaultInjector injector(ic);
  GrayConfig gc;
  gc.seed = gray_seed;
  gc.blackhole_permille = 400;
  GrayFault gray(gc);
  gray.Advance(bed.ctx().clock().now(), injector, nullptr);
  sw.set_gray(&gray);

  const SimNanos t0 = bed.ctx().clock().now();
  for (int i = 0; i < 64; ++i) {
    sw.Send(Packet{.src = gen.port(), .dst = nic.port(), .flow = 7, .bytes = 200});
  }
  return GrayRun{.switch_hash = sw.trace_hash(),
                 .gray_hash = gray.trace_hash(),
                 .gray_drops = sw.gray_drops(),
                 .elapsed_ns = bed.ctx().clock().now() - t0};
}

TEST(NetTest, GrayDropAndDelayReplayBitIdentically) {
  GrayRun a = RunGrayBurst(11, 21);
  GrayRun b = RunGrayBurst(11, 21);
  // Same seeds: every swallowed packet, the inflated hop timing, and the
  // forwarded-frame digest replay exactly.
  EXPECT_EQ(a.switch_hash, b.switch_hash);
  EXPECT_EQ(a.gray_hash, b.gray_hash);
  EXPECT_EQ(a.gray_drops, b.gray_drops);
  EXPECT_EQ(a.elapsed_ns, b.elapsed_ns);
  // The blackhole is intermittent, not total: some frames vanish, not all.
  EXPECT_GT(a.gray_drops, 0u);
  EXPECT_LT(a.gray_drops, 64u);

  // A different gray seed swallows a different packet subset.
  GrayRun c = RunGrayBurst(11, 22);
  EXPECT_NE(a.gray_hash, c.gray_hash);
}

TEST(NetTest, GrayLatencyEpisodeInflatesHopTime) {
  // Same injector stream, but a gray model with no blackhole at all: the
  // only difference from a healthy run is the 3x hop-latency episode.
  Testbed bed(RuntimeKind::kRunc, Deployment::kBareMetal);
  VSwitch sw(bed.ctx());
  VirtNic nic(bed.engine(), sw, "eth0", NicConfig{.rx_ring = 16});
  LoadGenerator gen(bed.ctx(), sw, "client");
  nic.OpenRawFlow(7, gen.port());

  const SimNanos healthy0 = bed.ctx().clock().now();
  sw.Send(Packet{.src = gen.port(), .dst = nic.port(), .flow = 7, .bytes = 120});
  const SimNanos healthy = bed.ctx().clock().now() - healthy0;

  InjectorConfig ic;
  ic.seed = 5;
  ic.latency_inflation_rate = 1.0;
  FaultInjector injector(ic);
  GrayConfig gc;
  gc.blackhole_permille = 0;
  GrayFault gray(gc);
  gray.Advance(bed.ctx().clock().now(), injector, nullptr);
  sw.set_gray(&gray);

  const SimNanos gray0 = bed.ctx().clock().now();
  sw.Send(Packet{.src = gen.port(), .dst = nic.port(), .flow = 7, .bytes = 120});
  const SimNanos inflated = bed.ctx().clock().now() - gray0;
  EXPECT_GT(inflated, healthy);
  EXPECT_EQ(sw.gray_drops(), 0u);
}

// --- deadline admission control at the NIC (DESIGN.md §13) ----------------

TEST(NetTest, NicShedsDataFramesWhoseDeadlineAlreadyExpired) {
  Testbed bed(RuntimeKind::kRunc, Deployment::kBareMetal);
  VSwitch sw(bed.ctx());
  VirtNic nic(bed.engine(), sw, "eth0");
  LoadGenerator gen(bed.ctx(), sw, "client");
  bed.engine().kernel().set_net(&nic);
  SyscallResult lfd = bed.engine().UserSyscall(
      SyscallRequest{.no = Sys::kListen, .arg0 = 80, .arg1 = 8});
  ASSERT_TRUE(lfd.ok());
  int64_t flow = gen.Connect(nic.port(), 80);
  ASSERT_GT(flow, 0);
  SyscallResult sock = bed.engine().UserSyscall(
      SyscallRequest{.no = Sys::kAccept, .arg0 = static_cast<uint64_t>(lfd.value)});
  ASSERT_TRUE(sock.ok());

  // A 1ns deadline budget is always stale by the time the frame crosses
  // the 250ns hop: the NIC consumes the frame and sheds it at RX.
  gen.set_deadline_budget_ns(1);
  gen.SendRequests(static_cast<int>(flow), 2, 256);
  EXPECT_EQ(nic.stats().rx_sheds, 2u);
  EXPECT_EQ(bed.engine()
                .UserSyscall(SyscallRequest{.no = Sys::kRecvfrom,
                                            .arg0 = static_cast<uint64_t>(sock.value),
                                            .arg1 = 256})
                .value,
            kEAGAIN);

  // With a sane budget the same path delivers normally.
  gen.set_deadline_budget_ns(1'000'000);
  gen.SendRequests(static_cast<int>(flow), 1, 256);
  EXPECT_EQ(nic.stats().rx_sheds, 2u);
  EXPECT_EQ(bed.engine()
                .UserSyscall(SyscallRequest{.no = Sys::kRecvfrom,
                                            .arg0 = static_cast<uint64_t>(sock.value),
                                            .arg1 = 256})
                .value,
            256);
  bed.engine().kernel().set_net(nullptr);
}

// --- causal request tracing (DESIGN.md §11) -------------------------------

TEST(NetTest, PacketTraceFieldsDefaultToZero) {
  // Every existing brace-init site builds an inactive trace for free.
  Packet p{.src = 1, .dst = 2, .flow = 3, .bytes = 100};
  EXPECT_EQ(p.trace_id, 0u);
  EXPECT_EQ(p.span_id, 0u);
}

TEST(NetTest, NicAdoptsRequestTraceOnReceiveAndStampsResponses) {
  Testbed bed(RuntimeKind::kCki, Deployment::kBareMetal);
  VSwitch sw(bed.ctx());
  VirtNic nic(bed.engine(), sw, "eth0");
  LoadGenerator gen(bed.ctx(), sw, "client");
  bed.engine().kernel().set_net(&nic);
  SyscallResult lfd = bed.engine().UserSyscall(
      SyscallRequest{.no = Sys::kListen, .arg0 = 80, .arg1 = 8});
  ASSERT_TRUE(lfd.ok());
  int64_t flow = gen.Connect(nic.port(), 80);
  ASSERT_GT(flow, 0);
  SyscallResult sock = bed.engine().UserSyscall(
      SyscallRequest{.no = Sys::kAccept, .arg0 = static_cast<uint64_t>(lfd.value)});
  ASSERT_TRUE(sock.ok());

  // Mint: the generator gives the request frame a fresh identity.
  gen.SendRequests(static_cast<int>(flow), 1, 256);
  uint64_t minted = gen.last_request_trace();
  EXPECT_NE(minted, 0u);

  // Adopt: receiving the frame makes its trace the guest's ambient one.
  EXPECT_EQ(bed.engine().kernel().net_trace().trace_id, 0u);
  bed.engine().UserSyscall(SyscallRequest{
      .no = Sys::kRecvfrom, .arg0 = static_cast<uint64_t>(sock.value), .arg1 = 256});
  EXPECT_EQ(bed.engine().kernel().net_trace().trace_id, minted);

  // Stamp: the response carries it back, and the generator matches it.
  bed.engine().UserSyscall(SyscallRequest{
      .no = Sys::kSendto, .arg0 = static_cast<uint64_t>(sock.value), .arg1 = 256});
  nic.Flush();
  EXPECT_EQ(gen.last_response_trace(), minted);
  EXPECT_EQ(gen.matched_responses(), 1u);
  bed.engine().kernel().set_net(nullptr);
}

TEST(NetTest, ServiceChainPreservesTraceIdentityForEveryRequest) {
  // Two containers, two hops each way: identity must survive all of them,
  // for every one of the 256 requests — no observability needed (trace
  // propagation is plain u64 copies, recording is what obs gates).
  ChainResult r = RunChainWithSeed(42);
  EXPECT_EQ(r.served, 256u);
  EXPECT_EQ(r.matched_traces, r.served);
  EXPECT_NE(r.last_trace_id, 0u);
}

// --- metrics export -------------------------------------------------------

TEST(NetTest, ExportMetricsPublishesNicAndSwitchCounters) {
  Testbed bed(RuntimeKind::kCki, Deployment::kBareMetal);
  VSwitch sw(bed.ctx());
  VirtNic nic(bed.engine(), sw, "eth0");
  LoadGenerator gen(bed.ctx(), sw, "client");
  bed.engine().kernel().set_net(&nic);
  SyscallResult lfd = bed.engine().UserSyscall(
      SyscallRequest{.no = Sys::kListen, .arg0 = 80, .arg1 = 8});
  ASSERT_TRUE(lfd.ok());
  int64_t flow = gen.Connect(nic.port(), 80);
  ASSERT_GT(flow, 0);
  SyscallResult sock = bed.engine().UserSyscall(
      SyscallRequest{.no = Sys::kAccept, .arg0 = static_cast<uint64_t>(lfd.value)});
  ASSERT_TRUE(sock.ok());
  gen.SendRequests(static_cast<int>(flow), 4, 256);
  bed.engine().UserSyscall(SyscallRequest{
      .no = Sys::kRecvfrom, .arg0 = static_cast<uint64_t>(sock.value), .arg1 = 256});
  bed.engine().UserSyscall(SyscallRequest{
      .no = Sys::kSendto, .arg0 = static_cast<uint64_t>(sock.value), .arg1 = 256});
  nic.Flush();

  MetricsRegistry metrics;
  nic.ExportMetrics(metrics);
  sw.ExportMetrics(metrics);
  EXPECT_GT(metrics.CounterValue("net/nic/eth0/rx_pkts"), 0u);
  EXPECT_GT(metrics.CounterValue("net/nic/eth0/kicks"), 0u);
  EXPECT_GT(metrics.CounterValue("net/nic/eth0/interrupts"), 0u);
  EXPECT_GT(metrics.CounterValue("net/switch/packets"), 0u);
  EXPECT_GT(metrics.CounterValue("net/port/eth0/rx_pkts"), 0u);
  EXPECT_EQ(metrics.CounterValue("net/port/eth0/drops"), 0u);
  EXPECT_GT(gen.response_bytes(static_cast<int>(flow)), 0u);
  bed.engine().kernel().set_net(nullptr);
}

// --- open-loop arrival process (src/net/load_gen.h) -----------------------

TEST(ArrivalProcessTest, DeterministicPureFunctionOfSeed) {
  ArrivalConfig config = ArrivalConfig::DiurnalBurst(/*seed=*/9, /*base_rate_per_sec=*/200'000);
  ArrivalProcess a(config), b(config);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(a.NextArrival(), b.NextArrival());
  }
  ArrivalConfig other = config;
  other.seed = 10;
  ArrivalProcess c(other);
  int diverged = 0;
  ArrivalProcess a2(config);
  for (int i = 0; i < 200; ++i) {
    diverged += a2.NextArrival() != c.NextArrival() ? 1 : 0;
  }
  EXPECT_GT(diverged, 0);
}

TEST(ArrivalProcessTest, ArrivalsAreMonotoneAndRateRoughlyTracksSchedule) {
  ArrivalConfig config;
  config.base_rate_per_sec = 1'000'000;  // 1 arrival/us mean
  config.seed = 3;
  ArrivalProcess p(config);
  SimNanos prev = 0;
  uint64_t count = 20'000;
  SimNanos last = 0;
  for (uint64_t i = 0; i < count; ++i) {
    SimNanos t = p.NextArrival();
    EXPECT_GT(t, prev);
    prev = t;
    last = t;
  }
  // Flat schedule: observed mean rate within 10% of configured.
  double observed = static_cast<double>(count) / (static_cast<double>(last) * 1e-9);
  EXPECT_NEAR(observed / config.base_rate_per_sec, 1.0, 0.1);
}

TEST(ArrivalProcessTest, ScheduleTablesModulateRate) {
  ArrivalConfig config;
  config.base_rate_per_sec = 500'000;
  config.diurnal = {2.0, 0.0};  // half the day silent, half at 2x
  config.diurnal_period_ns = 2'000'000;
  config.seed = 5;
  ArrivalProcess p(config);
  EXPECT_DOUBLE_EQ(p.MultiplierAt(0), 2.0);
  EXPECT_DOUBLE_EQ(p.MultiplierAt(1'500'000), 0.0);
  EXPECT_DOUBLE_EQ(p.MultiplierAt(2'000'001), 2.0);
  // No arrival may land inside a zero-rate slot.
  for (int i = 0; i < 5000; ++i) {
    SimNanos t = p.NextArrival();
    EXPECT_LT(t % config.diurnal_period_ns, 1'000'000u);
  }
}

TEST(ArrivalProcessTest, DrainUntilBuffersTheOvershoot) {
  ArrivalConfig config = ArrivalConfig::DiurnalBurst(/*seed=*/1, /*base_rate_per_sec=*/100'000);
  ArrivalProcess chunked(config), straight(config);
  std::vector<SimNanos> got;
  // Draining in uneven windows must reproduce the continuous stream
  // exactly: the first arrival past each boundary is buffered, not lost.
  for (SimNanos until = 7'777; got.size() < 500; until += 7'777) {
    chunked.DrainUntil(until, &got);
  }
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], straight.NextArrival()) << "arrival " << i;
  }
  // The buffered overshoot is not counted until it is actually handed out.
  EXPECT_EQ(chunked.minted(), got.size());
}

}  // namespace
}  // namespace cki
