// SimCluster: the parallel multi-machine scale-out runner (DESIGN.md §9).
//
// The invariants under test are the determinism contract — same root seed
// => bit-identical merged results at any thread count — and per-shard
// blast-radius containment: one shard dying never poisons its siblings.
#include "src/cluster/sim_cluster.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/cki/cki_engine.h"
#include "src/fault/fault_domain.h"
#include "src/fault/fault_injector.h"
#include "src/snap/snapshot.h"
#include "src/metrics/report.h"
#include "src/obs/histogram.h"
#include "src/obs/metrics_registry.h"
#include "src/runtime/runtime.h"
#include "src/workloads/mem_apps.h"
#include "src/workloads/service_chain.h"

namespace cki {
namespace {

// --- seed splitting ---------------------------------------------------------

TEST(ShardSeedTest, PureFunctionOfRootAndIndex) {
  EXPECT_EQ(SimCluster::ShardSeed(1, 0), SimCluster::ShardSeed(1, 0));
  EXPECT_EQ(SimCluster::ShardSeed(42, 7), SimCluster::ShardSeed(42, 7));
  EXPECT_NE(SimCluster::ShardSeed(1, 0), SimCluster::ShardSeed(2, 0));
}

TEST(ShardSeedTest, DistinctAcrossShardsAndNeverZero) {
  std::set<uint64_t> seeds;
  for (uint32_t i = 0; i < 256; ++i) {
    uint64_t seed = SimCluster::ShardSeed(12345, i);
    EXPECT_NE(seed, 0u);
    seeds.insert(seed);
  }
  EXPECT_EQ(seeds.size(), 256u);  // no collisions in a fleet-sized split
}

TEST(ShardSeedTest, ZeroRootSeedIsValid) {
  EXPECT_NE(SimCluster::ShardSeed(0, 0), 0u);
  EXPECT_NE(SimCluster::ShardSeed(0, 0), SimCluster::ShardSeed(0, 1));
}

// --- runner mechanics -------------------------------------------------------

TEST(SimClusterTest, ResultsOrderedByShardIndexAtAnyThreadCount) {
  for (uint32_t threads : {1u, 2u, 8u}) {
    SimCluster cluster(ClusterConfig{.shards = 16, .threads = threads, .root_seed = 9});
    ClusterResult result = cluster.Run([](const ShardTask& task) {
      ShardResult r;
      r.values["index"] = task.index;
      r.values["seed_lo"] = static_cast<double>(task.seed & 0xFFFF);
      return r;
    });
    ASSERT_EQ(result.shard_count(), 16u);
    for (uint32_t i = 0; i < 16; ++i) {
      EXPECT_EQ(result.shards()[i].index, i);
      EXPECT_EQ(result.shards()[i].values.at("index"), i);
      EXPECT_EQ(result.shards()[i].values.at("seed_lo"),
                static_cast<double>(SimCluster::ShardSeed(9, i) & 0xFFFF));
    }
  }
}

TEST(SimClusterTest, ThreadCountClampedToShards) {
  SimCluster cluster(ClusterConfig{.shards = 2, .threads = 64, .root_seed = 1});
  EXPECT_EQ(cluster.config().threads, 2u);
  ClusterResult result = cluster.Run([](const ShardTask&) { return ShardResult{}; });
  EXPECT_EQ(result.shard_count(), 2u);
  EXPECT_TRUE(result.all_ok());
}

// --- the determinism contract ----------------------------------------------

// A real mini-workload: one machine per shard, a container engine, a
// btree slice driven by the shard seed, plus a seeded fault injector so
// the injector's own hash feeds the shard digest.
ShardResult RealShardBody(const ShardTask& task) {
  ShardResult r;
  Testbed bed(RuntimeKind::kCki, Deployment::kBareMetal);
  // Armed injector: its decision stream (and so its hash) is a pure
  // function of the shard seed, which makes the digest seed-sensitive.
  FaultInjector injector(InjectorConfig{.seed = task.seed, .pks_violation_rate = 0.25});
  for (int i = 0; i < 64; ++i) {
    injector.InjectPksViolation();
  }
  SimNanos ns = RunBtreeRatio(bed.engine(), /*lookup_per_insert=*/2, /*total_ops=*/400,
                              /*seed=*/task.seed);
  r.metrics.Hist("test/btree_ns").Add(ns);
  r.metrics.Inc("test/machines");
  r.sim_ns = bed.ctx().clock().now();
  r.HashMix(ns);
  r.HashMix(injector.trace_hash());
  return r;
}

TEST(SimClusterTest, SameSeedSameMergedReportAtOneTwoEightThreads) {
  std::vector<uint64_t> hashes;
  std::vector<std::string> merged_json;
  std::vector<SimNanos> totals;
  for (uint32_t threads : {1u, 2u, 8u}) {
    SimCluster cluster(ClusterConfig{.shards = 8, .threads = threads, .root_seed = 77});
    ClusterResult result = cluster.Run(RealShardBody);
    ASSERT_TRUE(result.all_ok());
    hashes.push_back(result.trace_hash());
    totals.push_back(result.TotalSimNs());
    std::ostringstream os;
    result.MergedMetrics().WriteJson(os);
    merged_json.push_back(os.str());
  }
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_EQ(hashes[0], hashes[2]);
  EXPECT_EQ(totals[0], totals[1]);
  EXPECT_EQ(totals[0], totals[2]);
  EXPECT_EQ(merged_json[0], merged_json[1]);
  EXPECT_EQ(merged_json[0], merged_json[2]);
  EXPECT_GT(totals[0], 0u);
}

TEST(SimClusterTest, DifferentRootSeedChangesTheHash) {
  SimCluster a(ClusterConfig{.shards = 4, .threads = 2, .root_seed = 1});
  SimCluster b(ClusterConfig{.shards = 4, .threads = 2, .root_seed = 2});
  EXPECT_NE(a.Run(RealShardBody).trace_hash(), b.Run(RealShardBody).trace_hash());
}

// --- container teardown / re-admission (the orchestrator's reap path) -------

// One shard's reap-then-reclone cycle: clone a container off a warm CKI
// template, serve on it, reap it, verify the reclaim left nothing behind,
// then admit a new clone and require it to reuse the freed capacity and
// replay the same deterministic workload.
ShardResult ReapAndRecloneBody(const ShardTask& task) {
  ShardResult shard;
  shard.index = task.index;
  Machine machine(MachineConfigFor(RuntimeKind::kCki, Deployment::kBareMetal));
  auto tmpl = std::make_unique<CkiEngine>(machine, CkiAblation::kNone, /*segment_pages=*/1024);
  tmpl->Boot();
  tmpl->UserSyscall(SyscallRequest{.no = Sys::kOpen, .arg0 = 1});
  tmpl->MmapAnon(64 * kPageSize, /*populate=*/true);

  auto serve = [&shard](ContainerEngine& e) {
    uint64_t served = 0;
    for (int i = 0; i < 32; ++i) {
      SyscallResult r = e.UserSyscall(SyscallRequest{.no = Sys::kGetpid});
      shard.HashMix(static_cast<uint64_t>(r.value));
      served += r.ok() ? 1 : 0;
    }
    e.UserTouch(e.MmapAnon(4 * kPageSize, /*populate=*/true), /*write=*/true);
    return served;
  };

  std::unique_ptr<ContainerEngine> first = CloneContainer(*tmpl);
  const OwnerId first_id = first->id();
  if (serve(*first) != 32) {
    shard.ok = false;
    shard.error = "first clone failed to serve";
    return shard;
  }
  const uint64_t allocated_with_first = machine.frames().allocated_frames();

  // Reap: kill + reclaim. The dead owner must hold nothing afterwards —
  // no owned frames, no CoW shares against the template.
  first->KillFromFault();
  first.reset();
  if (machine.frames().OwnedFrames(first_id) != 0 ||
      machine.frames().SharedFrames(first_id) != 0) {
    shard.ok = false;
    shard.error = "reaped container leaked frames";
    return shard;
  }

  // Re-admission: the next clone on this shard fits in the capacity the
  // reap returned (no monotonic growth) and replays identically.
  std::unique_ptr<ContainerEngine> second = CloneContainer(*tmpl);
  if (serve(*second) != 32) {
    shard.ok = false;
    shard.error = "re-admitted clone failed to serve";
    return shard;
  }
  if (machine.frames().allocated_frames() > allocated_with_first) {
    shard.ok = false;
    shard.error = "re-admitted clone did not reuse reclaimed capacity";
    return shard;
  }
  shard.HashMix(machine.frames().allocated_frames());
  shard.HashMix(machine.frames().OwnedFrames(second->id()));
  second->KillFromFault();
  shard.HashMix(machine.frames().OwnedFrames(second->id()));
  return shard;
}

TEST(SimClusterTest, ReapedFramesReclaimedAndRecloneReusesCapacity) {
  std::vector<uint64_t> hashes;
  for (uint32_t threads : {1u, 2u, 8u}) {
    SimCluster cluster(ClusterConfig{.shards = 4, .threads = threads, .root_seed = 5});
    ClusterResult result = cluster.Run(ReapAndRecloneBody);
    for (const ShardResult& s : result.shards()) {
      EXPECT_TRUE(s.ok) << "shard " << s.index << ": " << s.error;
    }
    hashes.push_back(result.trace_hash());
  }
  // The teardown/re-admission cycle is part of the determinism contract:
  // the merged hash cannot move with the thread count.
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_EQ(hashes[0], hashes[2]);
}

// --- merge semantics --------------------------------------------------------

TEST(HistogramMergeTest, MergeEqualsSingleShotOnSameSamples) {
  // The same sample stream, recorded whole vs. split across 4 shards and
  // merged, must produce identical buckets and summary stats.
  std::vector<uint64_t> samples;
  uint64_t x = 88172645463325252ULL;
  for (int i = 0; i < 4000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    samples.push_back(x % 2'000'000);  // spread over many octaves
  }
  Histogram whole;
  for (uint64_t s : samples) {
    whole.Add(s);
  }
  Histogram parts[4];
  for (size_t i = 0; i < samples.size(); ++i) {
    parts[i % 4].Add(samples[i]);
  }
  Histogram merged;
  for (const Histogram& p : parts) {
    merged.Merge(p);
  }
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_EQ(merged.min(), whole.min());
  EXPECT_EQ(merged.max(), whole.max());
  EXPECT_DOUBLE_EQ(merged.Sum(), whole.Sum());
  for (size_t b = 0; b < Histogram::kBucketCount; ++b) {
    ASSERT_EQ(merged.bucket(b), whole.bucket(b)) << "bucket " << b;
  }
  for (double p : {1.0, 50.0, 95.0, 99.0, 99.9}) {
    EXPECT_DOUBLE_EQ(merged.Percentile(p), whole.Percentile(p)) << "p" << p;
  }
}

TEST(MetricsRegistryMergeTest, CountersAddAndHistogramsMerge) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.Inc("shared", 3);
  b.Inc("shared", 4);
  b.Inc("only_b", 5);
  a.Hist("lat").Add(100);
  b.Hist("lat").Add(300);
  b.Hist("only_b_hist").Add(7);
  a.Merge(b);
  EXPECT_EQ(a.CounterValue("shared"), 7u);
  EXPECT_EQ(a.CounterValue("only_b"), 5u);
  EXPECT_EQ(a.FindHist("lat")->count(), 2u);
  EXPECT_EQ(a.FindHist("lat")->min(), 100u);
  EXPECT_EQ(a.FindHist("lat")->max(), 300u);
  ASSERT_NE(a.FindHist("only_b_hist"), nullptr);
  EXPECT_EQ(a.FindHist("only_b_hist")->count(), 1u);
  // b is untouched.
  EXPECT_EQ(b.CounterValue("shared"), 4u);
}

TEST(ReportTableMergeTest, MergeRowsFoldsMatchingLabelsAndAppendsNew) {
  ReportTable a("t", "row", {"c1", "c2"});
  a.AddRow("x", {1, 10});
  ReportTable b("t", "row", {"c1", "c2"});
  b.AddRow("x", {2, 20});
  b.AddRow("y", {5, 50});
  a.MergeRows(b, MergeOp::kSum);
  EXPECT_DOUBLE_EQ(a.ValueAt("x", 0), 3);
  EXPECT_DOUBLE_EQ(a.ValueAt("x", 1), 30);
  EXPECT_DOUBLE_EQ(a.ValueAt("y", 0), 5);
  EXPECT_EQ(a.row_count(), 2u);

  ReportTable c("t", "row", {"c1", "c2"});
  c.AddRow("x", {0.5, 40});
  a.MergeRows(c, MergeOp::kMax);
  EXPECT_DOUBLE_EQ(a.ValueAt("x", 0), 3);   // max(3, 0.5)
  EXPECT_DOUBLE_EQ(a.ValueAt("x", 1), 40);  // max(30, 40)

  ReportTable wrong("t", "row", {"c1"});
  EXPECT_THROW(a.MergeRows(wrong), std::invalid_argument);
}

// --- blast radius across shards --------------------------------------------

TEST(SimClusterTest, ShardThrowingFatalHostErrorDoesNotPoisonSiblings) {
  SimCluster cluster(ClusterConfig{.shards = 6, .threads = 2, .root_seed = 5});
  ClusterResult result = cluster.Run([](const ShardTask& task) -> ShardResult {
    if (task.index == 3) {
      throw FatalHostError("shard 3 machine died");
    }
    ShardResult r;
    r.values["ok"] = 1;
    r.HashMix(task.seed);
    return r;
  });
  EXPECT_EQ(result.failed_count(), 1u);
  EXPECT_FALSE(result.shards()[3].ok);
  EXPECT_NE(result.shards()[3].error.find("shard 3"), std::string::npos);
  for (uint32_t i = 0; i < 6; ++i) {
    if (i != 3) {
      EXPECT_TRUE(result.shards()[i].ok) << "sibling " << i << " poisoned";
      EXPECT_EQ(result.shards()[i].values.at("ok"), 1);
    }
  }
  // Failed shards are part of the digest (a death is not silently equal
  // to a success), and the digest is still deterministic.
  ClusterResult again = cluster.Run([](const ShardTask& task) -> ShardResult {
    if (task.index == 3) {
      throw FatalHostError("shard 3 machine died");
    }
    ShardResult r;
    r.values["ok"] = 1;
    r.HashMix(task.seed);
    return r;
  });
  EXPECT_EQ(result.trace_hash(), again.trace_hash());
}

TEST(SimClusterTest, FaultBusKillInsideAShardStaysInsideIt) {
  // A container killed through the machine's FaultBus inside one shard:
  // the shard completes normally (the kill is contained by the machine's
  // own fault domain), and siblings never notice.
  SimCluster cluster(ClusterConfig{.shards = 4, .threads = 2, .root_seed = 11});
  ClusterResult result = cluster.Run([](const ShardTask& task) {
    ShardResult r;
    Testbed bed(RuntimeKind::kCki, Deployment::kBareMetal);
    uint64_t heap = bed.engine().MmapAnon(4 * kPageSize, true);
    if (task.index == 1) {
      bed.machine().faults().Kill(
          FaultReport{FaultKind::kProtectionViolation, bed.engine().id(), 0xBAD});
      // The victim is dead but the shard (and its machine) is fine.
      EXPECT_EQ(bed.engine().UserTouch(heap, true), TouchResult::kKilled);
      r.values["killed"] = 1;
    } else {
      EXPECT_EQ(bed.engine().UserTouch(heap, true), TouchResult::kOk);
      r.values["killed"] = 0;
    }
    r.values["containers_killed"] =
        static_cast<double>(bed.machine().faults().containers_killed());
    r.sim_ns = bed.ctx().clock().now();
    r.HashMix(bed.machine().faults().trace_hash());
    return r;
  });
  ASSERT_TRUE(result.all_ok());
  EXPECT_EQ(result.SumValue("killed"), 1);
  EXPECT_EQ(result.SumValue("containers_killed"), 1);  // exactly the one shard's kill
}

// --- per-shard observability capture ----------------------------------------

TEST(SimClusterTest, DetachedObservabilityTravelsWithTheShard) {
  SimCluster cluster(ClusterConfig{.shards = 3, .threads = 3, .root_seed = 21});
  ClusterResult result = cluster.Run([](const ShardTask& task) {
    ShardResult r;
    Testbed bed(RuntimeKind::kRunc, Deployment::kBareMetal);
    bed.ctx().obs().Enable();
    for (uint32_t i = 0; i <= task.index; ++i) {
      bed.engine().UserSyscall(SyscallRequest{.no = Sys::kGetpid});
    }
    r.sim_ns = bed.ctx().clock().now();
    r.obs = bed.ctx().obs().Detach();
    // After Detach the live context is back to the never-enabled state.
    EXPECT_FALSE(bed.ctx().obs().enabled());
    EXPECT_FALSE(bed.ctx().obs().has_data());
    return r;
  });
  ASSERT_TRUE(result.all_ok());
  for (uint32_t i = 0; i < 3; ++i) {
    const ShardResult& shard = result.shards()[i];
    ASSERT_TRUE(shard.obs.has_data()) << "shard " << i;
    // Each shard recorded its own syscalls: strictly more records per index.
    EXPECT_GT(shard.obs.recorder().total_recorded(), 0u);
    if (i > 0) {
      EXPECT_GT(shard.obs.recorder().total_recorded(),
                result.shards()[i - 1].obs.recorder().total_recorded());
    }
  }
}

TEST(SimClusterTest, SamplingNeverChangesTheMergedTraceHash) {
  // The sampling gate (DESIGN.md §11) drops recorder/span/histogram
  // writes, never simulated behavior: the cluster digest of a service
  // chain must be bit-identical across sampling rates and thread counts.
  auto run = [](uint32_t threads, uint32_t sample_every) {
    SimCluster cluster(ClusterConfig{.shards = 4, .threads = threads, .root_seed = 33});
    return cluster.Run([sample_every](const ShardTask& task) {
      ShardResult r;
      Machine machine(MachineConfigFor(RuntimeKind::kCki, Deployment::kBareMetal));
      machine.ctx().obs().Enable();
      machine.ctx().obs().set_sample_every(sample_every);
      auto proxy = MakeEngine(machine, RuntimeKind::kCki);
      proxy->Boot();
      auto backend = MakeEngine(machine, RuntimeKind::kCki);
      backend->Boot();
      ChainConfig config{.concurrency = 4, .total_requests = 64, .seed = task.seed};
      ChainResult chain = RunServiceChain(*proxy, *backend, config);
      r.sim_ns = machine.ctx().clock().now();
      r.HashMix(chain.trace_hash);
      r.HashMix(chain.matched_traces);
      r.HashMix(chain.last_trace_id);
      r.obs = machine.ctx().obs().Detach();
      return r;
    });
  };

  std::vector<uint64_t> hashes;
  for (uint32_t threads : {1u, 2u}) {
    for (uint32_t sample_every : {1u, 8u}) {
      ClusterResult result = run(threads, sample_every);
      ASSERT_TRUE(result.all_ok())
          << "threads=" << threads << " sample_every=" << sample_every;
      // The shard obs handoff also folds the self-accounting into the
      // merged metrics (sim_cluster.cc), deterministically per shard.
      EXPECT_GT(result.MergedMetrics().CounterValue("obs/self/root_ops"), 0u);
      hashes.push_back(result.trace_hash());
    }
  }
  ASSERT_EQ(hashes.size(), 4u);
  EXPECT_EQ(hashes[0], hashes[1]) << "sampling changed the digest";
  EXPECT_EQ(hashes[0], hashes[2]) << "thread count changed the digest";
  EXPECT_EQ(hashes[0], hashes[3]);
}

}  // namespace
}  // namespace cki
