// Tests for the gVisor-style userspace kernel and the process-like LibOS
// engines: the performance and security trade-offs of Table 1 must be
// observable, and basic kernel semantics must still hold where the design
// supports them.
#include <gtest/gtest.h>

#include "src/runtime/runtime.h"
#include "src/virt/gvisor_engine.h"
#include "src/virt/libos_engine.h"

namespace cki {
namespace {

// --- gVisor -------------------------------------------------------------------

TEST(GvisorTest, SyscallsAreSystrapSlow) {
  Testbed gv(RuntimeKind::kGvisor, Deployment::kBareMetal);
  Testbed runc(RuntimeKind::kRunc, Deployment::kBareMetal);
  auto syscall_ns = [](Testbed& bed) {
    bed.engine().UserSyscall(SyscallRequest{.no = Sys::kGetpid});
    return bed.Measure([&] { bed.engine().UserSyscall(SyscallRequest{.no = Sys::kGetpid}); });
  };
  SimNanos gv_ns = syscall_ns(gv);
  SimNanos native_ns = syscall_ns(runc);
  EXPECT_GT(gv_ns, 15 * native_ns) << "Systrap involves IPC (paper: much slower than native)";
  EXPECT_LT(gv_ns, 60 * native_ns);
}

TEST(GvisorTest, PageFaultsAvoidShadowPaging) {
  // gVisor lets the host handle app faults: they must be near-native and
  // far below PVM's shadow-paging cost.
  Testbed gv(RuntimeKind::kGvisor, Deployment::kBareMetal);
  Testbed pvm(RuntimeKind::kPvm, Deployment::kBareMetal);
  auto fault_ns = [](Testbed& bed) {
    uint64_t base = bed.engine().MmapAnon(16 * kPageSize, false);
    bed.engine().UserTouch(base, true);
    return bed.Measure([&] {
      for (int i = 1; i < 16; ++i) {
        bed.engine().UserTouch(base + static_cast<uint64_t>(i) * kPageSize, true);
      }
    });
  };
  EXPECT_LT(fault_ns(gv), fault_ns(pvm) / 3);
}

TEST(GvisorTest, KernelSemanticsHold) {
  Testbed bed(RuntimeKind::kGvisor, Deployment::kBareMetal);
  uint64_t base = bed.engine().MmapAnon(2 * kPageSize, false);
  EXPECT_EQ(bed.engine().UserTouch(base, true), TouchResult::kOk);
  SyscallResult r = bed.engine().UserSyscall(SyscallRequest{.no = Sys::kFork});
  EXPECT_TRUE(r.ok()) << "gVisor supports multi-processing";
  EXPECT_TRUE(bed.engine().UserSyscall(SyscallRequest{.no = Sys::kWaitpid, .arg0 = 0}).ok());
}

TEST(GvisorTest, NoVirtualizationHardwareInvolved) {
  Testbed bed(RuntimeKind::kGvisor, Deployment::kNested);
  uint64_t base = bed.engine().MmapAnon(4 * kPageSize, false);
  auto before = bed.ctx().trace().Snapshot();
  bed.engine().UserTouch(base, true);
  bed.engine().UserSyscall(SyscallRequest{.no = Sys::kGetpid});
  EXPECT_EQ(CountDelta(before, bed.ctx().trace(), PathEvent::kVmExit), 0u);
  EXPECT_EQ(CountDelta(before, bed.ctx().trace(), PathEvent::kNestedVmExit), 0u);
}

// --- LibOS ---------------------------------------------------------------------

TEST(LibOsTest, SyscallsAreFunctionCallFast) {
  Testbed libos(RuntimeKind::kLibOs, Deployment::kBareMetal);
  Testbed runc(RuntimeKind::kRunc, Deployment::kBareMetal);
  auto syscall_ns = [](Testbed& bed) {
    bed.engine().UserSyscall(SyscallRequest{.no = Sys::kGetpid});
    return bed.Measure([&] { bed.engine().UserSyscall(SyscallRequest{.no = Sys::kGetpid}); });
  };
  EXPECT_LT(syscall_ns(libos), syscall_ns(runc))
      << "a function call beats even a native syscall";
}

TEST(LibOsTest, NoUserKernelIsolation) {
  Testbed bed(RuntimeKind::kLibOs, Deployment::kBareMetal);
  EXPECT_TRUE(static_cast<LibOsEngine&>(bed.engine()).AppCanTouchLibOsState())
      << "the Table-1 security gap: app reaches libOS internals";
}

TEST(LibOsTest, CkiDoesHaveUserKernelIsolation) {
  // Contrast: under CKI the app cannot touch guest-kernel memory (U/K bit)
  // nor KSM memory (PKS) — shown elsewhere; here the libOS counterpart.
  Testbed bed(RuntimeKind::kCki, Deployment::kBareMetal);
  // Kernel image is mapped supervisor-only at kKernelBase.
  bed.machine().cpu().set_cpl(Cpl::kUser);
  Fault f = bed.machine().cpu().Access(kKernelBase, AccessIntent::Read());
  EXPECT_EQ(f.type, FaultType::kPageProtection);
}

TEST(LibOsTest, MultiProcessingUnsupported) {
  Testbed bed(RuntimeKind::kLibOs, Deployment::kBareMetal);
  EXPECT_EQ(bed.engine().UserSyscall(SyscallRequest{.no = Sys::kFork}).value, kEINVAL);
  EXPECT_EQ(bed.engine().UserSyscall(SyscallRequest{.no = Sys::kExecve}).value, kEINVAL);
}

TEST(LibOsTest, SingleProcessWorkStillWorks) {
  Testbed bed(RuntimeKind::kLibOs, Deployment::kBareMetal);
  uint64_t base = bed.engine().MmapAnon(4 * kPageSize, false);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(bed.engine().UserTouch(base + static_cast<uint64_t>(i) * kPageSize, true),
              TouchResult::kOk);
  }
  SyscallResult fd = bed.engine().UserSyscall(SyscallRequest{.no = Sys::kOpen, .arg0 = 3});
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(bed.engine()
                .UserSyscall(SyscallRequest{
                    .no = Sys::kWrite, .arg0 = static_cast<uint64_t>(fd.value), .arg1 = 256})
                .value,
            256);
}

// --- ordering across the whole design space -------------------------------------

TEST(DesignSpaceTest, SyscallLatencyLadder) {
  auto syscall_ns = [](RuntimeKind kind) {
    Testbed bed(kind, Deployment::kBareMetal);
    bed.engine().UserSyscall(SyscallRequest{.no = Sys::kGetpid});
    return bed.Measure([&] { bed.engine().UserSyscall(SyscallRequest{.no = Sys::kGetpid}); });
  };
  SimNanos libos = syscall_ns(RuntimeKind::kLibOs);
  SimNanos cki_ns = syscall_ns(RuntimeKind::kCki);
  SimNanos pvm = syscall_ns(RuntimeKind::kPvm);
  SimNanos gvisor = syscall_ns(RuntimeKind::kGvisor);
  // LibOS < CKI(=native) < PVM < gVisor — Figure 3's syscall story.
  EXPECT_LT(libos, cki_ns);
  EXPECT_LT(cki_ns, pvm);
  EXPECT_LT(pvm, gvisor);
}

}  // namespace
}  // namespace cki
