// Tests for src/blkfs: page-cache hit/evict/writeback ordering, the
// O_DIRECT bypass, layer-chain resolution in the host-side LayerStore,
// cross-container dedup refcounts with exact frame footprints on
// kill/reap, mmap pin cooperation, snapshot/clone round trips, and the
// cluster-level trace-hash determinism contract at several thread counts.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/blkfs/blkfs.h"
#include "src/cki/cki_engine.h"
#include "src/cluster/sim_cluster.h"
#include "src/runtime/runtime.h"
#include "src/snap/snapshot.h"
#include "src/workloads/blkfs_workload.h"

namespace cki {
namespace {

constexpr uint64_t kFileName = 0x66696c65;  // "file"
constexpr uint64_t kLogName = 0x6c6f67;     // "log"
constexpr uint64_t kCkiSegmentPages = 1024;

BlkfsImageSpec OneFile(uint64_t blocks, uint64_t seed = 3) {
  return BlkfsImageSpec{{{.name = kFileName, .blocks = blocks, .tag_seed = seed}}};
}

int64_t OpenBlkfs(ContainerEngine& e, uint64_t name, uint64_t extra_flags = 0) {
  SyscallResult r = e.UserSyscall(
      SyscallRequest{.no = Sys::kOpen, .arg0 = name, .arg1 = kOpenBlkfs | extra_flags});
  EXPECT_TRUE(r.ok());
  return r.value;
}

int64_t Pread(ContainerEngine& e, int64_t fd, uint64_t bytes, uint64_t off) {
  return e.UserSyscall(SyscallRequest{.no = Sys::kPread,
                                      .arg0 = static_cast<uint64_t>(fd),
                                      .arg1 = bytes,
                                      .arg2 = off})
      .value;
}

int64_t Pwrite(ContainerEngine& e, int64_t fd, uint64_t bytes, uint64_t off) {
  return e.UserSyscall(SyscallRequest{.no = Sys::kPwrite,
                                      .arg0 = static_cast<uint64_t>(fd),
                                      .arg1 = bytes,
                                      .arg2 = off})
      .value;
}

int64_t FsyncFd(ContainerEngine& e, int64_t fd) {
  return e.UserSyscall(SyscallRequest{.no = Sys::kFsync, .arg0 = static_cast<uint64_t>(fd)})
      .value;
}

// --- page cache basics ------------------------------------------------------

TEST(BlkfsCache, HitMissAndLruBasics) {
  Testbed bed(RuntimeKind::kCki, Deployment::kBareMetal);
  LayerStore store(bed.machine());
  BlkfsImageSpec spec = OneFile(8);
  BlkfsConfig cfg;
  cfg.readahead_window = 0;  // isolate hit/miss accounting
  Blkfs fs(bed.engine(), store, BuildBlkfsImage(store, spec), spec, cfg);

  int64_t fd = OpenBlkfs(bed.engine(), kFileName);
  EXPECT_EQ(Pread(bed.engine(), fd, kPageSize, 0), static_cast<int64_t>(kPageSize));
  EXPECT_EQ(fs.counters().misses, 1u);
  EXPECT_EQ(fs.counters().hits, 0u);
  EXPECT_EQ(fs.cached_pages(), 1u);

  EXPECT_EQ(Pread(bed.engine(), fd, kPageSize, 0), static_cast<int64_t>(kPageSize));
  EXPECT_EQ(fs.counters().misses, 1u);
  EXPECT_EQ(fs.counters().hits, 1u);

  // A second block is its own cache entry; reads past EOF return 0.
  EXPECT_EQ(Pread(bed.engine(), fd, kPageSize, 3 * kPageSize), static_cast<int64_t>(kPageSize));
  EXPECT_EQ(fs.cached_pages(), 2u);
  EXPECT_EQ(Pread(bed.engine(), fd, kPageSize, 64 * kPageSize), 0);
}

TEST(BlkfsCache, ReadaheadFollowsSequentialRuns) {
  Testbed bed(RuntimeKind::kCki, Deployment::kBareMetal);
  LayerStore store(bed.machine());
  BlkfsImageSpec spec = OneFile(24);
  Blkfs fs(bed.engine(), store, BuildBlkfsImage(store, spec), spec);  // window = 8

  int64_t fd = OpenBlkfs(bed.engine(), kFileName);
  for (uint64_t b = 0; b < 24; ++b) {
    EXPECT_EQ(Pread(bed.engine(), fd, kPageSize, b * kPageSize),
              static_cast<int64_t>(kPageSize));
  }
  // Miss at 0 prefetches 1..8; hits extend the run, so the boundary miss
  // at 9 prefetches 10..17, and 18 prefetches the 19..23 tail.
  EXPECT_EQ(fs.counters().misses, 3u);
  EXPECT_EQ(fs.counters().readahead, 21u);
  EXPECT_EQ(fs.counters().hits, 21u);
  EXPECT_EQ(fs.cached_pages(), 24u);

  // Warm re-scan: pure hits, no device traffic.
  uint64_t dev_reads = fs.device_stats().reads;
  for (uint64_t b = 0; b < 24; ++b) {
    EXPECT_EQ(Pread(bed.engine(), fd, kPageSize, b * kPageSize),
              static_cast<int64_t>(kPageSize));
  }
  EXPECT_EQ(fs.counters().misses, 3u);
  EXPECT_EQ(fs.device_stats().reads, dev_reads);
}

TEST(BlkfsCache, WritebackEpochIsAsyncAndFsyncIsABarrier) {
  Testbed bed(RuntimeKind::kCki, Deployment::kBareMetal);
  LayerStore store(bed.machine());
  BlkfsImageSpec spec = OneFile(4);
  BlkfsConfig cfg;
  cfg.readahead_window = 0;
  cfg.writeback_epoch = 8;
  Blkfs fs(bed.engine(), store, BuildBlkfsImage(store, spec), spec, cfg);

  int64_t fd = OpenBlkfs(bed.engine(), kLogName);  // fresh empty file
  for (uint64_t b = 0; b < 4; ++b) {
    EXPECT_EQ(Pwrite(bed.engine(), fd, kPageSize, b * kPageSize),
              static_cast<int64_t>(kPageSize));
  }
  // Below the epoch: dirty pages sit in the cache, nothing hit the device.
  EXPECT_EQ(fs.dirty_pages(), 4u);
  EXPECT_EQ(fs.counters().writebacks, 0u);
  EXPECT_EQ(fs.device_stats().writes, 0u);
  EXPECT_EQ(fs.device_stats().flushes, 0u);

  // fsync: writeback of exactly the dirty pages, then the FLUSH barrier.
  EXPECT_EQ(FsyncFd(bed.engine(), fd), 0);
  EXPECT_EQ(fs.dirty_pages(), 0u);
  EXPECT_EQ(fs.counters().writebacks, 4u);
  EXPECT_EQ(fs.device_stats().writes, 4u);
  EXPECT_EQ(fs.device_stats().flushes, 1u);

  // Hitting the epoch triggers an asynchronous batch: writes, no flush.
  for (uint64_t b = 0; b < 8; ++b) {
    EXPECT_EQ(Pwrite(bed.engine(), fd, kPageSize, b * kPageSize),
              static_cast<int64_t>(kPageSize));
  }
  EXPECT_EQ(fs.dirty_pages(), 0u);
  EXPECT_EQ(fs.counters().writebacks, 12u);
  EXPECT_EQ(fs.device_stats().flushes, 1u);
}

TEST(BlkfsCache, ODirectBypassesTheCache) {
  Testbed bed(RuntimeKind::kCki, Deployment::kBareMetal);
  LayerStore store(bed.machine());
  BlkfsImageSpec spec = OneFile(8);
  Blkfs fs(bed.engine(), store, BuildBlkfsImage(store, spec), spec);

  int64_t fd = OpenBlkfs(bed.engine(), kFileName, kOpenDirect);
  EXPECT_EQ(Pread(bed.engine(), fd, 4 * kPageSize, 0), static_cast<int64_t>(4 * kPageSize));
  EXPECT_EQ(fs.counters().direct_reads, 4u);
  EXPECT_EQ(fs.counters().misses, 0u);
  EXPECT_EQ(fs.cached_pages(), 0u);
  EXPECT_EQ(fs.device_stats().reads, 4u);

  EXPECT_EQ(Pwrite(bed.engine(), fd, 2 * kPageSize, 0), static_cast<int64_t>(2 * kPageSize));
  EXPECT_EQ(fs.counters().direct_writes, 2u);
  EXPECT_EQ(fs.cached_pages(), 0u);
  EXPECT_EQ(fs.dirty_pages(), 0u);
  EXPECT_EQ(fs.device_stats().writes, 2u);
  // The direct write landed in the delta layer, not the base image.
  EXPECT_EQ(store.delta(fs.frontend().view()).size(), 2u);
}

// --- host-side layer chain --------------------------------------------------

TEST(BlkfsLayers, ResolutionWalksDeltaThenBase) {
  Machine machine(MachineConfigFor(RuntimeKind::kCki, Deployment::kBareMetal));
  LayerStore store(machine);
  int image = store.RegisterImage({10, 11, 12, 13});
  int view = store.OpenView(image, 1);

  BlkResolution base = store.Resolve(view, 1);
  EXPECT_FALSE(base.from_delta);
  EXPECT_TRUE(base.base_present);
  EXPECT_EQ(base.tag, 11u);
  EXPECT_EQ(base.chain_steps, 2);
  EXPECT_EQ(base.host_pa, kNoPage);  // not materialized yet

  bool fresh = false;
  uint64_t pa = store.MaterializeBase(view, 1, &fresh);
  EXPECT_TRUE(fresh);
  EXPECT_NE(pa, kNoPage);
  EXPECT_EQ(store.MaterializeBase(view, 1, &fresh), pa);
  EXPECT_FALSE(fresh);
  EXPECT_EQ(store.materialized_frames(image), 1u);
  EXPECT_EQ(store.Resolve(view, 1).host_pa, pa);

  // A delta write shadows the base block without touching the image.
  store.WriteDelta(view, 1, 99);
  BlkResolution delta = store.Resolve(view, 1);
  EXPECT_TRUE(delta.from_delta);
  EXPECT_EQ(delta.tag, 99u);
  EXPECT_EQ(delta.chain_steps, 1);
  EXPECT_EQ(store.image(image).block_tags[1], 11u);

  // Past the base extent: a hole until written.
  BlkResolution hole = store.Resolve(view, 9);
  EXPECT_FALSE(hole.base_present);
  EXPECT_FALSE(hole.from_delta);

  // Clones copy the parent delta and then diverge.
  int clone = store.CloneView(view, 2);
  EXPECT_TRUE(store.Resolve(clone, 1).from_delta);
  store.WriteDelta(clone, 2, 77);
  EXPECT_TRUE(store.Resolve(clone, 2).from_delta);
  EXPECT_FALSE(store.Resolve(view, 2).from_delta);

  // Identical content dedups to the same image id.
  EXPECT_EQ(store.RegisterImage({10, 11, 12, 13}), image);
  EXPECT_NE(store.RegisterImage({10, 11, 12, 14}), image);
}

// --- cross-container dedup + exact reap footprint ---------------------------

TEST(BlkfsDedup, SiblingsShareBaseFramesAndReapExactly) {
  constexpr uint64_t kBlocks = 32;
  Machine machine(MachineConfigFor(RuntimeKind::kCki, Deployment::kBareMetal));
  LayerStore store(machine);
  BlkfsImageSpec spec = OneFile(kBlocks);
  int image = BuildBlkfsImage(store, spec);
  BlkfsConfig cfg;
  cfg.cache_pages = kBlocks;

  auto a = std::make_unique<CkiEngine>(machine, CkiAblation::kNone, kCkiSegmentPages);
  a->Boot();
  auto b = std::make_unique<CkiEngine>(machine, CkiAblation::kNone, kCkiSegmentPages);
  b->Boot();
  uint64_t a_owned = machine.frames().OwnedFrames(a->id());
  uint64_t b_owned = machine.frames().OwnedFrames(b->id());
  auto fs_a = std::make_unique<Blkfs>(*a, store, image, spec, cfg);
  auto fs_b = std::make_unique<Blkfs>(*b, store, image, spec, cfg);

  int64_t fd_a = OpenBlkfs(*a, kFileName);
  int64_t fd_b = OpenBlkfs(*b, kFileName);
  for (uint64_t blk = 0; blk < kBlocks; ++blk) {
    EXPECT_EQ(Pread(*a, fd_a, kPageSize, blk * kPageSize), static_cast<int64_t>(kPageSize));
    EXPECT_EQ(Pread(*b, fd_b, kPageSize, blk * kPageSize), static_cast<int64_t>(kPageSize));
  }

  // One physical copy machine-wide; each container maps it via shares and
  // pays zero private frames for read-only image data.
  EXPECT_EQ(store.materialized_frames(image), kBlocks);
  EXPECT_EQ(machine.frames().OwnedFrames(a->id()), a_owned);
  EXPECT_EQ(machine.frames().OwnedFrames(b->id()), b_owned);
  EXPECT_EQ(machine.frames().SharedFrames(a->id()), kBlocks);
  EXPECT_EQ(machine.frames().SharedFrames(b->id()), kBlocks);
  EXPECT_EQ(fs_a->counters().base_shares, kBlocks);
  // The device filled each base frame exactly once; the sibling's reads
  // were pure share grants.
  EXPECT_EQ(fs_a->device_stats().reads + fs_b->device_stats().reads, kBlocks);

  // Killing one sibling returns exactly its footprint; the other keeps
  // reading from its intact cache.
  a->KillFromFault();
  EXPECT_EQ(machine.frames().OwnedFrames(a->id()), 0u);
  EXPECT_EQ(machine.frames().SharedFrames(a->id()), 0u);
  uint64_t hits_before = fs_b->counters().hits;
  EXPECT_EQ(Pread(*b, fd_b, kPageSize, 5 * kPageSize), static_cast<int64_t>(kPageSize));
  EXPECT_EQ(fs_b->counters().hits, hits_before + 1);

  b->KillFromFault();
  EXPECT_EQ(machine.frames().OwnedFrames(b->id()), 0u);
  EXPECT_EQ(machine.frames().SharedFrames(b->id()), 0u);
  // The base image survives container reaps: it is host-owned.
  EXPECT_EQ(store.materialized_frames(image), kBlocks);

  fs_a.reset();
  fs_b.reset();
}

// --- mmap cooperation -------------------------------------------------------

TEST(BlkfsMmap, EvictionSkipsMappedPages) {
  Testbed bed(RuntimeKind::kCki, Deployment::kBareMetal);
  LayerStore store(bed.machine());
  BlkfsImageSpec spec = OneFile(16);
  BlkfsConfig cfg;
  cfg.cache_pages = 4;
  cfg.readahead_window = 0;
  Blkfs fs(bed.engine(), store, BuildBlkfsImage(store, spec), spec, cfg);

  int64_t fd = OpenBlkfs(bed.engine(), kFileName);
  SyscallResult map = bed.engine().UserSyscall(SyscallRequest{.no = Sys::kMmap,
                                                              .arg0 = kPageSize,
                                                              .arg1 = kProtRead,
                                                              .arg2 = kMapShared,
                                                              .arg3 = static_cast<uint64_t>(fd)});
  ASSERT_TRUE(map.ok());
  uint64_t va = static_cast<uint64_t>(map.value);
  EXPECT_EQ(bed.engine().UserTouch(va, /*write=*/false), TouchResult::kOk);
  EXPECT_EQ(fs.cached_pages(), 1u);

  // Thrash well past capacity: the mapped page is pinned and survives.
  for (uint64_t blk = 1; blk < 16; ++blk) {
    EXPECT_EQ(Pread(bed.engine(), fd, kPageSize, blk * kPageSize),
              static_cast<int64_t>(kPageSize));
  }
  EXPECT_GT(fs.counters().evictions, 0u);
  EXPECT_LE(fs.cached_pages(), 5u);
  uint64_t hits_before = fs.counters().hits;
  EXPECT_EQ(Pread(bed.engine(), fd, kPageSize, 0), static_cast<int64_t>(kPageSize));
  EXPECT_EQ(fs.counters().hits, hits_before + 1);
}

TEST(BlkfsMmap, SharedMapsWriteBackAndPrivateMapsCow) {
  Testbed bed(RuntimeKind::kCki, Deployment::kBareMetal);
  LayerStore store(bed.machine());
  BlkfsImageSpec spec = OneFile(8);
  Blkfs fs(bed.engine(), store, BuildBlkfsImage(store, spec), spec);
  ContainerEngine& e = bed.engine();

  // kMapShared: a store dirties the file page; fsync writes it back.
  int64_t fd = OpenBlkfs(e, kFileName);
  SyscallResult shared = e.UserSyscall(SyscallRequest{.no = Sys::kMmap,
                                                      .arg0 = kPageSize,
                                                      .arg1 = kProtRead | kProtWrite,
                                                      .arg2 = kMapShared,
                                                      .arg3 = static_cast<uint64_t>(fd)});
  ASSERT_TRUE(shared.ok());
  uint64_t shared_va = static_cast<uint64_t>(shared.value);
  EXPECT_EQ(e.UserTouch(shared_va, /*write=*/true), TouchResult::kOk);
  EXPECT_EQ(fs.dirty_pages(), 1u);
  // The first store to a base-image page privatized it (CoW break) so the
  // shared host frame stayed pristine for siblings.
  EXPECT_EQ(fs.counters().cow_breaks, 1u);
  EXPECT_EQ(FsyncFd(e, fd), 0);
  EXPECT_EQ(fs.dirty_pages(), 0u);
  EXPECT_EQ(fs.device_stats().writes, 1u);
  EXPECT_EQ(store.delta(fs.frontend().view()).size(), 1u);

  // Writeback write-protected the mapping: the next store refaults into
  // dirty tracking instead of mutating a clean page invisibly.
  EXPECT_EQ(e.UserTouch(shared_va, /*write=*/true), TouchResult::kOk);
  EXPECT_EQ(fs.dirty_pages(), 1u);

  // kMapPrivate: the store copies into an anonymous page; the file stays
  // clean and fsync has nothing to do.
  FsyncFd(e, fd);
  uint64_t writes_before = fs.device_stats().writes;
  SyscallResult priv = e.UserSyscall(SyscallRequest{.no = Sys::kMmap,
                                                    .arg0 = kPageSize,
                                                    .arg1 = kProtRead | kProtWrite,
                                                    .arg2 = kMapPrivate,
                                                    .arg3 = static_cast<uint64_t>(fd)});
  ASSERT_TRUE(priv.ok());
  uint64_t priv_va = static_cast<uint64_t>(priv.value);
  EXPECT_EQ(e.UserTouch(priv_va, /*write=*/true), TouchResult::kOk);
  EXPECT_EQ(fs.dirty_pages(), 0u);
  EXPECT_EQ(FsyncFd(e, fd), 0);
  EXPECT_EQ(fs.device_stats().writes, writes_before);
}

// --- snapshot / clone -------------------------------------------------------

TEST(BlkfsSnap, CheckpointRestoreRoundTripIsBitIdentical) {
  Machine source(MachineConfigFor(RuntimeKind::kCki, Deployment::kBareMetal));
  LayerStore source_store(source);
  BlkfsImageSpec spec = OneFile(8);
  int image = BuildBlkfsImage(source_store, spec);
  auto tmpl = std::make_unique<CkiEngine>(source, CkiAblation::kNone, kCkiSegmentPages);
  tmpl->Boot();
  auto fs = std::make_unique<Blkfs>(*tmpl, source_store, image, spec);

  int64_t fd = OpenBlkfs(*tmpl, kFileName);
  EXPECT_EQ(Pread(*tmpl, fd, 4 * kPageSize, 0), static_cast<int64_t>(4 * kPageSize));
  EXPECT_EQ(Pwrite(*tmpl, fd, kPageSize, 2 * kPageSize), static_cast<int64_t>(kPageSize));
  EXPECT_EQ(FsyncFd(*tmpl, fd), 0);

  SnapshotImage img = CheckpointContainer(*tmpl, nullptr, nullptr, fs.get());
  uint64_t captured_hash = fs->trace_hash();

  // Restore on two fresh machines; both must rebuild the same filesystem.
  auto restore = [&](Machine& machine, LayerStore& store) {
    RestoreOutcome out = RestoreContainer(machine, img);
    EXPECT_TRUE(out.ok);
    std::unique_ptr<Blkfs> rfs = RestoreBlkfsState(*out.engine, store, out.blkfs_state);
    EXPECT_NE(rfs, nullptr);
    return std::make_pair(std::move(out.engine), std::move(rfs));
  };
  Machine m2(MachineConfigFor(RuntimeKind::kCki, Deployment::kBareMetal));
  LayerStore store2(m2);
  auto [eng2, fs2] = restore(m2, store2);
  Machine m3(MachineConfigFor(RuntimeKind::kCki, Deployment::kBareMetal));
  LayerStore store3(m3);
  auto [eng3, fs3] = restore(m3, store3);

  EXPECT_EQ(fs2->trace_hash(), captured_hash);
  EXPECT_EQ(fs3->trace_hash(), captured_hash);
  // The restored delta shadows block 2 exactly as the source left it.
  EXPECT_EQ(store2.delta(fs2->frontend().view()), source_store.delta(fs->frontend().view()));

  // Re-checkpointing both restored containers yields bit-identical
  // streams: nothing about the restore depends on the machine it ran on.
  SnapshotImage img2 = CheckpointContainer(*eng2, nullptr, nullptr, fs2.get());
  SnapshotImage img3 = CheckpointContainer(*eng3, nullptr, nullptr, fs3.get());
  EXPECT_EQ(img2.bytes, img3.bytes);

  // The restored cache answers from memory and the file reads back whole.
  int64_t fd2 = OpenBlkfs(*eng2, kFileName);
  uint64_t hits_before = fs2->counters().hits;
  EXPECT_EQ(Pread(*eng2, fd2, 4 * kPageSize, 0), static_cast<int64_t>(4 * kPageSize));
  EXPECT_GT(fs2->counters().hits, hits_before);
}

TEST(BlkfsSnap, CloneForksTheDeltaAndSharesTheCache) {
  Machine machine(MachineConfigFor(RuntimeKind::kCki, Deployment::kBareMetal));
  LayerStore store(machine);
  BlkfsImageSpec spec = OneFile(8);
  int image = BuildBlkfsImage(store, spec);
  auto parent = std::make_unique<CkiEngine>(machine, CkiAblation::kNone, kCkiSegmentPages);
  parent->Boot();
  auto fs = std::make_unique<Blkfs>(*parent, store, image, spec);

  int64_t fd = OpenBlkfs(*parent, kFileName);
  EXPECT_EQ(Pread(*parent, fd, 4 * kPageSize, 0), static_cast<int64_t>(4 * kPageSize));
  EXPECT_EQ(Pwrite(*parent, fd, kPageSize, 0), static_cast<int64_t>(kPageSize));

  std::unique_ptr<ContainerEngine> clone = CloneContainer(*parent);
  ASSERT_NE(clone, nullptr);
  std::unique_ptr<Blkfs> cfs = Blkfs::Clone(*clone, *fs);
  // Clone() flushed the parent, so both sides agree on the quiesced state.
  EXPECT_EQ(cfs->trace_hash(), fs->trace_hash());
  EXPECT_EQ(store.delta(cfs->frontend().view()), store.delta(fs->frontend().view()));
  EXPECT_EQ(cfs->cached_pages(), fs->cached_pages());

  // The clone reads from the shared (CoW) cache pages without device I/O.
  int64_t cfd = OpenBlkfs(*clone, kFileName);
  uint64_t dev_reads = cfs->device_stats().reads;
  EXPECT_EQ(Pread(*clone, cfd, 4 * kPageSize, 0), static_cast<int64_t>(4 * kPageSize));
  EXPECT_EQ(cfs->device_stats().reads, dev_reads);

  // Divergence: a clone write lands in the clone's delta only.
  EXPECT_EQ(Pwrite(*clone, cfd, kPageSize, 5 * kPageSize), static_cast<int64_t>(kPageSize));
  EXPECT_EQ(FsyncFd(*clone, cfd), 0);
  EXPECT_TRUE(store.Resolve(cfs->frontend().view(), 5).from_delta);
  EXPECT_FALSE(store.Resolve(fs->frontend().view(), 5).from_delta);
}

// --- determinism across thread counts ---------------------------------------

TEST(BlkfsCluster, TraceHashIsThreadCountInvariant) {
  auto run = [](uint32_t threads) {
    SimCluster cluster(ClusterConfig{.shards = 4, .threads = threads, .root_seed = 17});
    ClusterResult result = cluster.Run([](const ShardTask& task) {
      ShardResult shard;
      shard.index = task.index;
      Machine machine(MachineConfigFor(RuntimeKind::kCki, Deployment::kBareMetal));
      LayerStore store(machine);
      BlkfsImageSpec spec = OneFile(16, /*seed=*/task.seed % 7);
      int image = BuildBlkfsImage(store, spec);
      auto engine = std::make_unique<CkiEngine>(machine, CkiAblation::kNone, kCkiSegmentPages);
      engine->Boot();
      auto fs = std::make_unique<Blkfs>(*engine, store, image, spec);
      RunBlkfsWal(*engine, *fs, /*transactions=*/8);
      RunBlkfsScan(*engine, *fs, kFileName, 16);
      shard.HashMix(fs->trace_hash());
      shard.HashMix(machine.faults().trace_hash());
      engine->KillFromFault();
      EXPECT_EQ(machine.frames().OwnedFrames(engine->id()), 0u);
      EXPECT_EQ(machine.frames().SharedFrames(engine->id()), 0u);
      shard.sim_ns = machine.ctx().clock().now();
      return shard;
    });
    EXPECT_TRUE(result.all_ok());
    return result.trace_hash();
  };
  uint64_t at1 = run(1);
  EXPECT_EQ(run(2), at1);
  EXPECT_EQ(run(8), at1);
}

}  // namespace
}  // namespace cki
