// Compatibility matrix tests (Table 1, bottom rows): nested-cloud
// deployability and container binary compatibility per design.
#include <gtest/gtest.h>

#include "src/runtime/runtime.h"
#include "src/virt/hvm_engine.h"

namespace cki {
namespace {

TEST(CompatibilityTest, HvmCannotDeployWithoutNestedVirt) {
  MachineConfig config = MachineConfigFor(RuntimeKind::kHvm, Deployment::kNested);
  config.nested_virt_available = false;  // the IaaS disabled it
  Machine machine(config);
  HvmEngine engine(machine);
  engine.Boot();
  EXPECT_TRUE(engine.deployment_unavailable());
}

TEST(CompatibilityTest, HvmDeploysWhenNestedVirtExists) {
  Machine machine(MachineConfigFor(RuntimeKind::kHvm, Deployment::kNested));
  HvmEngine engine(machine);
  engine.Boot();
  EXPECT_FALSE(engine.deployment_unavailable());
  EXPECT_TRUE(engine.UserSyscall(SyscallRequest{.no = Sys::kGetpid}).ok());
}

TEST(CompatibilityTest, SoftwareDesignsDeployWithoutNestedVirt) {
  for (RuntimeKind kind : {RuntimeKind::kPvm, RuntimeKind::kCki, RuntimeKind::kGvisor}) {
    MachineConfig config = MachineConfigFor(kind, Deployment::kNested);
    config.nested_virt_available = false;
    Machine machine(config);
    std::unique_ptr<ContainerEngine> engine = MakeEngine(machine, kind);
    engine->Boot();
    EXPECT_TRUE(engine->UserSyscall(SyscallRequest{.no = Sys::kGetpid}).ok())
        << RuntimeKindName(kind) << " needs no virtualization hardware";
  }
}

TEST(CompatibilityTest, BinaryCompatibilityMatrix) {
  // fork+execve (multi-processing) works on every kernel-separation design
  // and on gVisor; the proc-like LibOS rejects it.
  for (RuntimeKind kind : {RuntimeKind::kRunc, RuntimeKind::kHvm, RuntimeKind::kPvm,
                           RuntimeKind::kCki, RuntimeKind::kGvisor}) {
    Testbed bed(kind, Deployment::kBareMetal);
    EXPECT_TRUE(bed.engine().UserSyscall(SyscallRequest{.no = Sys::kFork}).ok())
        << RuntimeKindName(kind);
  }
  Testbed libos(RuntimeKind::kLibOs, Deployment::kBareMetal);
  EXPECT_FALSE(libos.engine().UserSyscall(SyscallRequest{.no = Sys::kFork}).ok());
}

TEST(CompatibilityTest, CkiNeedsItsHardwareExtensions) {
  // On a stock CPU the CKI gates cannot exist: wrpkrs is #UD. The runtime
  // factory therefore provisions extension-enabled machines for CKI kinds
  // and stock machines for everything else.
  EXPECT_TRUE(MachineConfigFor(RuntimeKind::kCki, Deployment::kBareMetal)
                  .extensions.pks_priv_gating);
  EXPECT_FALSE(MachineConfigFor(RuntimeKind::kPvm, Deployment::kBareMetal)
                   .extensions.pks_priv_gating);
  EXPECT_FALSE(MachineConfigFor(RuntimeKind::kGvisor, Deployment::kBareMetal)
                   .extensions.wrpkrs_instruction);
}

}  // namespace
}  // namespace cki
