// Tests for file-backed mappings and the page cache of the model guest
// kernel: shared mappings alias the same physical page across processes,
// private mappings copy on write, and the cache pins pages across unmaps.
#include <gtest/gtest.h>

#include "src/runtime/runtime.h"

namespace cki {
namespace {

class FileMmapTest : public ::testing::TestWithParam<RuntimeKind> {
 protected:
  FileMmapTest() : bed_(GetParam(), Deployment::kBareMetal) {}

  ContainerEngine& engine() { return bed_.engine(); }
  GuestKernel& kernel() { return bed_.engine().kernel(); }

  int OpenFile(uint64_t tag) {
    SyscallResult fd = engine().UserSyscall(SyscallRequest{.no = Sys::kOpen, .arg0 = tag});
    EXPECT_TRUE(fd.ok());
    engine().UserSyscall(SyscallRequest{
        .no = Sys::kWrite, .arg0 = static_cast<uint64_t>(fd.value), .arg1 = 4 * kPageSize});
    return static_cast<int>(fd.value);
  }

  uint64_t MapFile(int fd, uint64_t flags, uint64_t prot = kProtRead | kProtWrite) {
    SyscallResult r = engine().UserSyscall(SyscallRequest{.no = Sys::kMmap,
                                                          .arg0 = 4 * kPageSize,
                                                          .arg1 = prot,
                                                          .arg2 = flags,
                                                          .arg3 = static_cast<uint64_t>(fd)});
    EXPECT_TRUE(r.ok());
    return static_cast<uint64_t>(r.value);
  }

  // Physical address currently mapped at `va` in the current process.
  uint64_t PaOf(uint64_t va) {
    WalkResult walk = kernel().editor().Walk(kernel().current().pt_root, va);
    EXPECT_TRUE(walk.fault.ok());
    return PteAddr(walk.leaf_pte);
  }

  Testbed bed_;
};

TEST_P(FileMmapTest, SharedMappingAliasesPageCache) {
  int fd = OpenFile(100);
  uint64_t a = MapFile(fd, kMapShared);
  uint64_t b = MapFile(fd, kMapShared);
  ASSERT_NE(a, b);
  ASSERT_EQ(engine().UserTouch(a, true), TouchResult::kOk);
  ASSERT_EQ(engine().UserTouch(b, false), TouchResult::kOk);
  EXPECT_EQ(PaOf(a), PaOf(b)) << "both mappings must alias the same cache page";
}

TEST_P(FileMmapTest, SharedMappingSurvivesAcrossFork) {
  int fd = OpenFile(101);
  uint64_t base = MapFile(fd, kMapShared);
  ASSERT_EQ(engine().UserTouch(base, true), TouchResult::kOk);
  uint64_t parent_pa = PaOf(base);
  SyscallResult child = engine().UserSyscall(SyscallRequest{.no = Sys::kFork});
  ASSERT_TRUE(child.ok());
  kernel().SwitchTo(static_cast<int>(child.value));
  ASSERT_EQ(engine().UserTouch(base, false), TouchResult::kOk);
  EXPECT_EQ(PaOf(base), parent_pa) << "child shares the same file page";
}

TEST_P(FileMmapTest, PrivateMappingCopiesOnWrite) {
  int fd = OpenFile(102);
  uint64_t base = MapFile(fd, kMapPrivate);
  ASSERT_EQ(engine().UserTouch(base, false), TouchResult::kOk);  // read: cache page
  uint64_t cache_pa = PaOf(base);
  ASSERT_EQ(engine().UserTouch(base, true), TouchResult::kOk);   // write: copy
  EXPECT_NE(PaOf(base), cache_pa) << "private write must not touch the cache page";
  // A fresh shared mapping still sees the original cache page.
  uint64_t shared = MapFile(fd, kMapShared);
  ASSERT_EQ(engine().UserTouch(shared, false), TouchResult::kOk);
  EXPECT_EQ(PaOf(shared), cache_pa);
}

TEST_P(FileMmapTest, CachePinsPagesAcrossUnmap) {
  int fd = OpenFile(103);
  uint64_t a = MapFile(fd, kMapShared);
  ASSERT_EQ(engine().UserTouch(a, true), TouchResult::kOk);
  uint64_t pa = PaOf(a);
  ASSERT_TRUE(engine()
                  .UserSyscall(SyscallRequest{.no = Sys::kMunmap, .arg0 = a, .arg1 = 4 * kPageSize})
                  .ok());
  // Remap: the same physical page comes back from the cache.
  uint64_t b = MapFile(fd, kMapShared);
  ASSERT_EQ(engine().UserTouch(b, false), TouchResult::kOk);
  EXPECT_EQ(PaOf(b), pa);
}

TEST_P(FileMmapTest, DistinctBlocksDistinctPages) {
  int fd = OpenFile(104);
  uint64_t base = MapFile(fd, kMapShared);
  ASSERT_EQ(engine().UserTouch(base, true), TouchResult::kOk);
  ASSERT_EQ(engine().UserTouch(base + kPageSize, true), TouchResult::kOk);
  EXPECT_NE(PaOf(base), PaOf(base + kPageSize));
}

TEST_P(FileMmapTest, MmapOfBadFdFails) {
  SyscallResult r = engine().UserSyscall(SyscallRequest{.no = Sys::kMmap,
                                                        .arg0 = kPageSize,
                                                        .arg1 = kProtRead,
                                                        .arg2 = kMapShared,
                                                        .arg3 = 99});
  EXPECT_EQ(r.value, kEBADF);
}

TEST_P(FileMmapTest, SharedPlusPrivateIsInvalid) {
  int fd = OpenFile(105);
  SyscallResult r = engine().UserSyscall(SyscallRequest{.no = Sys::kMmap,
                                                        .arg0 = kPageSize,
                                                        .arg1 = kProtRead,
                                                        .arg2 = kMapShared | kMapPrivate,
                                                        .arg3 = static_cast<uint64_t>(fd)});
  EXPECT_EQ(r.value, kEINVAL);
}

INSTANTIATE_TEST_SUITE_P(Engines, FileMmapTest,
                         ::testing::Values(RuntimeKind::kRunc, RuntimeKind::kHvm,
                                           RuntimeKind::kPvm, RuntimeKind::kCki),
                         [](const ::testing::TestParamInfo<RuntimeKind>& param_info) {
                           return std::string(RuntimeKindName(param_info.param));
                         });

}  // namespace
}  // namespace cki
