// Security tests for the CKI mechanisms (paper sections 4 and 6): the
// PKS-gating hardware extension, the page-table monitor invariants, gate
// abuse, interrupt abuse, PCID confinement, and cross-container isolation.
// Each test mounts a concrete attack and asserts it is stopped.
#include <gtest/gtest.h>

#include "src/cki/cki_engine.h"
#include "src/hw/pks.h"
#include "src/runtime/runtime.h"

namespace cki {
namespace {

class CkiSecurityTest : public ::testing::Test {
 protected:
  CkiSecurityTest() : bed_(RuntimeKind::kCki, Deployment::kBareMetal) {}

  CkiEngine& engine() { return static_cast<CkiEngine&>(bed_.engine()); }
  Cpu& cpu() { return bed_.machine().cpu(); }
  Ksm& ksm() { return engine().ksm(); }

  // Puts the CPU in "compromised guest kernel" state: ring 0, PKRS_GUEST.
  void EnterGuestKernel() {
    cpu().set_cpl(Cpl::kKernel);
    cpu().SetPkrsDirect(kPkrsGuest);
  }

  Testbed bed_;
};

// --- privileged-instruction isolation (sec 4.1) ---------------------------

TEST_F(CkiSecurityTest, DestructiveInstructionsTrapInGuestKernel) {
  EnterGuestKernel();
  for (PrivInstr instr : {PrivInstr::kWrmsr, PrivInstr::kMovToCr3, PrivInstr::kLidt,
                          PrivInstr::kIret, PrivInstr::kCli, PrivInstr::kSti, PrivInstr::kPopf,
                          PrivInstr::kInvpcid, PrivInstr::kInOut}) {
    EXPECT_EQ(cpu().ExecPriv(instr).type, FaultType::kPrivInstrBlocked)
        << PrivInstrName(instr) << " must trap with PKRS != 0";
  }
}

TEST_F(CkiSecurityTest, HarmlessInstructionsExecuteInGuestKernel) {
  EnterGuestKernel();
  for (PrivInstr instr : {PrivInstr::kMovFromCr, PrivInstr::kClac, PrivInstr::kStac,
                          PrivInstr::kInvlpg, PrivInstr::kSwapgs, PrivInstr::kSysret,
                          PrivInstr::kHlt}) {
    EXPECT_TRUE(cpu().ExecPriv(instr).ok())
        << PrivInstrName(instr) << " must stay executable (Table 3)";
  }
}

TEST_F(CkiSecurityTest, SameInstructionsExecuteInKsmContext) {
  cpu().set_cpl(Cpl::kKernel);
  cpu().SetPkrsDirect(kPkrsMonitor);  // KSM / host: PKRS == 0
  for (PrivInstr instr : {PrivInstr::kWrmsr, PrivInstr::kMovToCr3, PrivInstr::kLidt,
                          PrivInstr::kIret, PrivInstr::kCli}) {
    EXPECT_TRUE(cpu().ExecPriv(instr).ok())
        << PrivInstrName(instr) << " must execute with PKRS == 0";
  }
}

TEST_F(CkiSecurityTest, PrivilegedInstructionsFaultFromUserMode) {
  cpu().set_cpl(Cpl::kUser);
  EXPECT_EQ(cpu().ExecPriv(PrivInstr::kMovToCr3).type, FaultType::kGeneralProtection);
  EXPECT_EQ(cpu().Wrpkrs(0).type, FaultType::kGeneralProtection);
}

TEST_F(CkiSecurityTest, WrpkrsIsUndefinedWithoutTheExtension) {
  Machine stock(MachineConfigFor(RuntimeKind::kRunc, Deployment::kBareMetal));
  stock.cpu().set_cpl(Cpl::kKernel);
  EXPECT_EQ(stock.cpu().Wrpkrs(0).type, FaultType::kInvalidOpcode);
}

TEST_F(CkiSecurityTest, GuestCannotRaiseOwnPkrsViaWrmsr) {
  EnterGuestKernel();
  // wrmsr is blocked, so the legacy PKRS-write path is closed.
  EXPECT_EQ(cpu().WrpkrsViaMsr(0).type, FaultType::kPrivInstrBlocked);
  EXPECT_EQ(cpu().pkrs(), kPkrsGuest);
}

TEST_F(CkiSecurityTest, SysretCannotMaskInterrupts) {
  // DoS attempt: return to user mode with IF cleared so the timer can
  // never preempt. The extended sysret forces IF on when PKRS != 0.
  EnterGuestKernel();
  ASSERT_TRUE(cpu().Sysret(/*requested_if=*/false).ok());
  EXPECT_TRUE(cpu().interrupts_enabled());
  // Trusted code (PKRS == 0) retains full control of RFLAGS.
  cpu().set_cpl(Cpl::kKernel);
  cpu().SetPkrsDirect(kPkrsMonitor);
  ASSERT_TRUE(cpu().Sysret(/*requested_if=*/false).ok());
  EXPECT_FALSE(cpu().interrupts_enabled());
  cpu().set_interrupts_enabled(true);
}

// --- PKS memory isolation (sec 3.3) -----------------------------------------

TEST_F(CkiSecurityTest, GuestKernelCannotTouchKsmMemory) {
  EnterGuestKernel();
  Fault read_fault = cpu().Access(ksm().per_vcpu_area_va(), AccessIntent::Read());
  EXPECT_EQ(read_fault.type, FaultType::kPageKeyViolation);
  Fault write_fault = cpu().Access(ksm().per_vcpu_area_va(), AccessIntent::Write());
  EXPECT_EQ(write_fault.type, FaultType::kPageKeyViolation);
}

TEST_F(CkiSecurityTest, KsmReachesItsOwnMemory) {
  cpu().set_cpl(Cpl::kKernel);
  cpu().SetPkrsDirect(kPkrsMonitor);
  EXPECT_TRUE(cpu().Access(ksm().per_vcpu_area_va(), AccessIntent::Write()).ok());
  cpu().SetPkrsDirect(kPkrsGuest);
}

TEST_F(CkiSecurityTest, UserModeCannotTouchKsmMemoryEither) {
  cpu().set_cpl(Cpl::kUser);
  Fault f = cpu().Access(ksm().per_vcpu_area_va(), AccessIntent::Read());
  // Supervisor-only page: plain protection fault before any key check.
  EXPECT_EQ(f.type, FaultType::kPageProtection);
}

// --- page-table monitor invariants (sec 4.3) --------------------------------

TEST_F(CkiSecurityTest, StoreOutsideDeclaredPtpRejected) {
  uint64_t rogue = engine().AllocDataPage();  // guest data frame, not a PTP
  uint64_t sanitized = 0;
  PtpVerdict v = ksm().monitor().CheckStore(rogue, MakePte(rogue, kPteP | kPteW), 1, 0x1000,
                                            &sanitized);
  EXPECT_EQ(v, PtpVerdict::kNotDeclared);
}

TEST_F(CkiSecurityTest, MappingForeignFrameRejected) {
  // The attacker asks the KSM to map a host-owned frame (the KSM region
  // itself) into its address space.
  engine().UserTouch(kUserTextBase, false);  // populate the text leaf
  uint64_t root = engine().kernel().current().pt_root;
  std::optional<uint64_t> slot = engine().kernel().editor().FindLeafSlot(root, kUserTextBase);
  ASSERT_TRUE(slot.has_value());
  PtpVerdict v = ksm().UpdatePte(*slot, MakePte(ksm().ksm_region_pa(), kPteP | kPteW), 1,
                                 kUserTextBase);
  EXPECT_EQ(v, PtpVerdict::kForeignFrame);
  EXPECT_GE(bed_.ctx().trace().Count(PathEvent::kSecurityViolation), 1u);
}

TEST_F(CkiSecurityTest, GuestChosenProtectionKeysRejected) {
  engine().UserTouch(kUserTextBase, false);
  uint64_t root = engine().kernel().current().pt_root;
  std::optional<uint64_t> slot = engine().kernel().editor().FindLeafSlot(root, kUserTextBase);
  ASSERT_TRUE(slot.has_value());
  uint64_t frame = engine().segment().base;
  PtpVerdict v = ksm().UpdatePte(*slot, MakePte(frame, kPteP | kPteW, kPkeyKsm), 1,
                                 kUserTextBase);
  EXPECT_EQ(v, PtpVerdict::kBadPkey);
}

TEST_F(CkiSecurityTest, NewKernelExecutableMappingRejectedAfterSeal) {
  ASSERT_TRUE(ksm().monitor().sealed());
  engine().UserTouch(kUserTextBase, false);
  uint64_t root = engine().kernel().current().pt_root;
  std::optional<uint64_t> slot = engine().kernel().editor().FindLeafSlot(root, kUserTextBase);
  ASSERT_TRUE(slot.has_value());
  uint64_t frame = engine().segment().base;
  // U=0, NX=0: kernel-executable — the path to smuggling wrpkrs bytes.
  PtpVerdict v = ksm().UpdatePte(*slot, MakePte(frame, kPteP), 1, kUserTextBase);
  EXPECT_EQ(v, PtpVerdict::kKernelExecMapping);
}

TEST_F(CkiSecurityTest, MappingPtpAsDataForcedReadOnly) {
  engine().UserTouch(kUserTextBase, false);
  GuestKernel& kernel = engine().kernel();
  uint64_t root = kernel.current().pt_root;
  // Find some declared PTP: the root itself.
  ASSERT_TRUE(ksm().monitor().IsPtp(root));
  std::optional<uint64_t> slot = kernel.editor().FindLeafSlot(root, kUserTextBase);
  ASSERT_TRUE(slot.has_value());
  PtpVerdict v = ksm().UpdatePte(*slot, MakePte(root, kPteP | kPteW | kPteNx), 1, kUserTextBase);
  EXPECT_EQ(v, PtpVerdict::kOk);
  uint64_t stored = bed_.machine().mem().ReadU64(*slot);
  EXPECT_FALSE(PteWritable(stored)) << "PTP data mapping must be read-only";
  EXPECT_EQ(PtePkey(stored), kPkeyPtp) << "PTP data mapping must carry pkey_PTP";
}

TEST_F(CkiSecurityTest, PtpCannotBeLinkedTwice) {
  // Allocate two PTPs at level 2 and try to reference the same level-1 PTP
  // from both (aliasing would let one mapping bypass monitoring).
  uint64_t pd1 = engine().AllocPtp(2);
  uint64_t pd2 = engine().AllocPtp(2);
  uint64_t pt = engine().AllocPtp(1);
  PtpVerdict first = ksm().UpdatePte(pd1 + 8 * 5, MakePte(pt, kPteP | kPteW), 2, 0);
  EXPECT_EQ(first, PtpVerdict::kOk);
  PtpVerdict second = ksm().UpdatePte(pd2 + 8 * 9, MakePte(pt, kPteP | kPteW), 2, 0);
  EXPECT_EQ(second, PtpVerdict::kPtpAlreadyLinked);
}

TEST_F(CkiSecurityTest, Cr3LoadOfUndeclaredRootRejected) {
  uint64_t fake_root = engine().segment().base + 17 * kPageSize;
  EXPECT_EQ(ksm().monitor().CheckCr3(fake_root), PtpVerdict::kRootNotDeclared);
  EXPECT_EQ(ksm().LoadGuestCr3(fake_root, 1, 0), PtpVerdict::kRootNotDeclared);
}

TEST_F(CkiSecurityTest, ReservedTopLevelSlotsRejected) {
  uint64_t root = engine().kernel().current().pt_root;
  uint64_t frame = engine().AllocPtp(3);
  PtpVerdict v = ksm().UpdatePte(root + static_cast<uint64_t>(kKsmRegionSlot) * 8,
                                 MakePte(frame, kPteP | kPteW), kPtLevels, kKsmRegionVa);
  EXPECT_EQ(v, PtpVerdict::kReservedSlot);
  v = ksm().UpdatePte(root + static_cast<uint64_t>(kPerVcpuSlot) * 8,
                      MakePte(frame, kPteP | kPteW), kPtLevels, kPerVcpuAreaVa);
  EXPECT_EQ(v, PtpVerdict::kReservedSlot);
}

// --- switch-gate abuse (sec 4.2) --------------------------------------------

TEST_F(CkiSecurityTest, RopJumpToGateWrpkrsAborts) {
  EnterGuestKernel();
  uint64_t aborted_before = engine().gates().aborted_switches();
  // Attacker wants PKRS with only the PTP write-disable lifted.
  EXPECT_FALSE(engine().gates().AttackRopWrpkrs(PkAccessDisable(kPkeyKsm)));
  EXPECT_GT(engine().gates().aborted_switches(), aborted_before);
  EXPECT_EQ(cpu().pkrs(), kPkrsGuest) << "abort path must restore a safe PKRS";
}

TEST_F(CkiSecurityTest, RopJumpWithGateConstantGainsNothing) {
  EnterGuestKernel();
  // Supplying exactly the gate constant is just the legitimate entry: the
  // attacker lands on the fixed dispatcher, not arbitrary code.
  EXPECT_FALSE(engine().gates().AttackRopWrpkrs(kPkrsMonitor));
}

// --- interrupt abuse (sec 4.4) ------------------------------------------------

TEST_F(CkiSecurityTest, HardwareInterruptSwitchesPkrsAndReachesHost) {
  EnterGuestKernel();
  EXPECT_TRUE(engine().DeliverHardwareInterrupt(kVecTimer));
  // After iret, the guest PKRS is restored by the extension.
  EXPECT_EQ(cpu().pkrs(), kPkrsGuest);
}

TEST_F(CkiSecurityTest, SoftwareIntCannotForgeInterrupt) {
  EnterGuestKernel();
  uint64_t violations_before = bed_.ctx().trace().Count(PathEvent::kSecurityViolation);
  EXPECT_FALSE(engine().gates().AttackForgeInterrupt(kVecVirtioNet));
  EXPECT_GT(bed_.ctx().trace().Count(PathEvent::kSecurityViolation), violations_before);
}

TEST_F(CkiSecurityTest, CorruptedStackCannotTripleFaultWithIst) {
  EnterGuestKernel();
  cpu().set_stack_valid(false);  // guest points RSP at garbage
  // Interrupt vectors use IST stacks configured by the KSM: delivery works.
  InterruptEntry entry = cpu().DeliverInterrupt(kVecTimer, /*hardware=*/true);
  EXPECT_TRUE(entry.fault.ok());
  cpu().IretTrusted(Cpl::kKernel, entry.saved_pkrs);
  cpu().set_stack_valid(true);
}

TEST_F(CkiSecurityTest, WithoutIstCorruptedStackWouldTripleFault) {
  // Counterfactual: an IDT whose timer gate does not use IST.
  Idt naive;
  naive.SetGate(kVecTimer, IdtGate{.present = true, .handler_tag = 1, .ist_index = 0,
                                   .pks_switch = true});
  cpu().set_idt(&naive);
  EnterGuestKernel();
  cpu().set_stack_valid(false);
  InterruptEntry entry = cpu().DeliverInterrupt(kVecTimer, /*hardware=*/true);
  EXPECT_EQ(entry.fault.type, FaultType::kTripleFault);
  cpu().set_stack_valid(true);
  cpu().set_idt(&ksm().idt());
}

TEST_F(CkiSecurityTest, SwapgsCannotMisleadTheKsm) {
  // The guest may corrupt kernel_gs (swapgs is allowed), but the per-vCPU
  // area is found at a constant VA, not via gs (Fig 8c).
  EnterGuestKernel();
  cpu().set_kernel_gs_base(0xDEAD'BEEF'0000);
  ASSERT_TRUE(cpu().Swapgs().ok());
  cpu().SetPkrsDirect(kPkrsMonitor);
  EXPECT_TRUE(engine().gates().SecureStackAccessible())
      << "KSM must locate the secure stack regardless of gs state";
  cpu().SetPkrsDirect(kPkrsGuest);
}

// --- TLB / PCID confinement (sec 4.1) -----------------------------------------

TEST(CkiCrossContainer, InvlpgCannotFlushOtherContainers) {
  Machine machine(MachineConfigFor(RuntimeKind::kCki, Deployment::kBareMetal));
  CkiEngine a(machine, CkiAblation::kNone, 4096);
  a.Boot();
  CkiEngine b(machine, CkiAblation::kNone, 4096);
  b.Boot();

  // Container B touches a page (loads a TLB entry under B's PCID).
  uint64_t vb = b.MmapAnon(kPageSize, true);
  EXPECT_EQ(b.UserTouch(vb, false), TouchResult::kOk);
  uint16_t b_pcid = Cr3Pcid(machine.cpu().cr3());
  size_t b_entries = machine.cpu().tlb().ValidCountForPcid(b_pcid);
  ASSERT_GT(b_entries, 0u);

  // Container A (now made current) flushes the same VA maliciously.
  machine.cpu().set_cpl(Cpl::kKernel);
  machine.cpu().SetPkrsDirect(kPkrsGuest);
  a.LoadAddressSpace(a.kernel().current().pt_root, a.kernel().current().asid);
  machine.cpu().SetPkrsDirect(kPkrsGuest);
  ASSERT_TRUE(machine.cpu().Invlpg(vb).ok());

  EXPECT_EQ(machine.cpu().tlb().ValidCountForPcid(b_pcid), b_entries)
      << "invlpg must only affect the issuing container's PCID context";
}

TEST(CkiCrossContainer, CannotMapAnotherContainersSegment) {
  Machine machine(MachineConfigFor(RuntimeKind::kCki, Deployment::kBareMetal));
  CkiEngine a(machine, CkiAblation::kNone, 4096);
  a.Boot();
  CkiEngine b(machine, CkiAblation::kNone, 4096);
  b.Boot();

  machine.cpu().SetPkrsDirect(kPkrsGuest);
  a.LoadAddressSpace(a.kernel().current().pt_root, a.kernel().current().asid);
  a.UserTouch(kUserTextBase, false);
  uint64_t a_root = a.kernel().current().pt_root;
  std::optional<uint64_t> slot = a.kernel().editor().FindLeafSlot(a_root, kUserTextBase);
  ASSERT_TRUE(slot.has_value());
  uint64_t theirs = b.segment().base + 3 * kPageSize;
  PtpVerdict v = a.ksm().UpdatePte(*slot, MakePte(theirs, kPteP | kPteW), 1, kUserTextBase);
  EXPECT_EQ(v, PtpVerdict::kForeignFrame)
      << "container A must not map container B's physical memory";
}

// --- binary rewriting (sec 4.1) -------------------------------------------------

TEST(BinaryRewriterTest, DetectsStrayWrpkrs) {
  BinaryRewriter rewriter;
  rewriter.RegisterGateOffset(0x100);
  std::vector<uint8_t> image(4096, 0x90);
  EmitWrpkrs(image, 0x100);   // legitimate gate
  EmitWrpkrs(image, 0x2F0);   // smuggled
  ScanReport report = rewriter.Scan(image);
  EXPECT_FALSE(report.clean());
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0], 0x2F0u);
  EXPECT_EQ(report.gate_occurrences, 1u);
}

TEST(BinaryRewriterTest, DetectsUnalignedOccurrences) {
  BinaryRewriter rewriter;
  std::vector<uint8_t> image(4096, 0x90);
  // The wrpkrs byte pattern hidden at an odd offset inside "other"
  // instructions — x86 does not enforce alignment.
  EmitWrpkrs(image, 0x101);
  EmitWrpkrs(image, 0x3FF);  // straddles nothing but sits unaligned
  ScanReport report = rewriter.Scan(image);
  EXPECT_EQ(report.violations.size(), 2u);
}

TEST(BinaryRewriterTest, RewritePatchesViolations) {
  BinaryRewriter rewriter;
  rewriter.RegisterGateOffset(0x40);
  std::vector<uint8_t> image(1024, 0x90);
  EmitWrpkrs(image, 0x40);
  EmitWrpkrs(image, 0x80);
  EmitWrpkrs(image, 0x83);  // overlapping second occurrence
  EXPECT_EQ(rewriter.Rewrite(image), 2u);
  ScanReport after = rewriter.Scan(image);
  EXPECT_TRUE(after.clean());
  EXPECT_EQ(after.gate_occurrences, 1u) << "gate sites must survive rewriting";
}

TEST(BinaryRewriterTest, BootImageOfEngineIsClean) {
  Testbed bed(RuntimeKind::kCki, Deployment::kBareMetal);
  auto& engine = static_cast<CkiEngine&>(bed.engine());
  // The engine asserts this at boot; double-check the invariant holds.
  EXPECT_GE(engine.rewriter().gate_offsets().size(), 4u);
}

// --- per-vCPU top-level copies (sec 4.2/4.3) -------------------------------------

TEST_F(CkiSecurityTest, TopLevelUpdatesMirrorIntoCopies) {
  GuestKernel& kernel = engine().kernel();
  uint64_t root = kernel.current().pt_root;
  uint64_t copy = ksm().TopLevelCopy(root, 0);
  ASSERT_NE(copy, 0u);
  PhysMem& mem = bed_.machine().mem();
  // Every guest slot of the copy must equal the original; KSM slots differ.
  for (int i = 0; i < kPtEntries; ++i) {
    if (i == kKsmRegionSlot || i == kPerVcpuSlot) {
      EXPECT_TRUE(PtePresent(mem.ReadU64(copy + static_cast<uint64_t>(i) * 8)));
      EXPECT_FALSE(PtePresent(mem.ReadU64(root + static_cast<uint64_t>(i) * 8)))
          << "KSM mappings must exist only in the hardware copies";
    } else {
      EXPECT_EQ(mem.ReadU64(copy + static_cast<uint64_t>(i) * 8),
                mem.ReadU64(root + static_cast<uint64_t>(i) * 8))
          << "slot " << i;
    }
  }
}

TEST_F(CkiSecurityTest, AccessedBitsPropagateFromCopies) {
  GuestKernel& kernel = engine().kernel();
  uint64_t root = kernel.current().pt_root;
  uint64_t copy = ksm().TopLevelCopy(root, 0);
  PhysMem& mem = bed_.machine().mem();
  // Simulate hardware setting the A bit in the copy only.
  int slot = PtIndex(kUserTextBase, kPtLevels);
  uint64_t off = static_cast<uint64_t>(slot) * 8;
  mem.WriteU64(copy + off, mem.ReadU64(copy + off) | kPteA);
  uint64_t read = ksm().ReadTopLevelPte(root, slot);
  EXPECT_TRUE((read & kPteA) != 0) << "A/D bits must propagate from per-vCPU copies";
}

}  // namespace
}  // namespace cki
