// Property-style tests of the page-table monitor: randomized operation
// sequences must never violate the nested-kernel invariants, and the
// monitor's bookkeeping (link counts, declarations) must stay consistent
// with the accepted operations.
#include <gtest/gtest.h>

#include <map>

#include "src/cki/ptp_monitor.h"
#include "src/host/machine.h"
#include "src/sim/rng.h"

namespace cki {
namespace {

class MonitorPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  MonitorPropertyTest()
      : machine_(), owner_(machine_.AllocOwnerId()), monitor_(machine_.frames(), owner_) {
    // A pool of frames owned by the container and a few foreign frames.
    for (int i = 0; i < 64; ++i) {
      own_frames_.push_back(machine_.frames().AllocFrame(owner_));
    }
    OwnerId other = machine_.AllocOwnerId();
    for (int i = 0; i < 8; ++i) {
      foreign_frames_.push_back(machine_.frames().AllocFrame(other));
    }
  }

  Machine machine_;
  OwnerId owner_;
  PtpMonitor monitor_;
  std::vector<uint64_t> own_frames_;
  std::vector<uint64_t> foreign_frames_;
};

TEST_P(MonitorPropertyTest, RandomOperationSequencePreservesInvariants) {
  Rng rng(GetParam());
  monitor_.SealKernelText();

  // Model state mirroring what the monitor should track.
  std::map<uint64_t, int> declared;      // pa -> level
  std::map<uint64_t, uint64_t> links;    // child pa -> parent slot
  std::map<uint64_t, uint64_t> slots;    // slot -> child pa

  for (int step = 0; step < 2000; ++step) {
    int action = static_cast<int>(rng.NextBelow(4));
    uint64_t frame = own_frames_[rng.NextBelow(own_frames_.size())];
    switch (action) {
      case 0: {  // declare as PTP (random level 1..4)
        int level = 1 + static_cast<int>(rng.NextBelow(4));
        PtpVerdict v = monitor_.DeclarePtp(frame, level);
        if (declared.count(frame) != 0) {
          EXPECT_EQ(v, PtpVerdict::kDataPageInUse) << "double declaration must fail";
        } else if (v == PtpVerdict::kOk) {
          declared[frame] = level;
        }
        break;
      }
      case 1: {  // link a child into a parent table
        if (declared.empty()) {
          break;
        }
        auto parent_it = declared.begin();
        std::advance(parent_it, static_cast<long>(rng.NextBelow(declared.size())));
        auto child_it = declared.begin();
        std::advance(child_it, static_cast<long>(rng.NextBelow(declared.size())));
        uint64_t slot = parent_it->first + rng.NextBelow(kPtEntries) * 8;
        uint64_t sanitized = 0;
        PtpVerdict v = monitor_.CheckStore(slot, MakePte(child_it->first, kPteP | kPteW),
                                           parent_it->second, 0, &sanitized);
        bool level_ok = parent_it->second > 1 && child_it->second == parent_it->second - 1;
        bool child_linked = links.count(child_it->first) != 0 &&
                            links[child_it->first] != slot;
        if (!level_ok) {
          EXPECT_NE(v, PtpVerdict::kOk) << "level mismatch must be rejected";
        } else if (child_linked) {
          EXPECT_EQ(v, PtpVerdict::kPtpAlreadyLinked);
        }
        if (v == PtpVerdict::kOk && parent_it->second > 1) {
          if (slots.count(slot) != 0) {
            links.erase(slots[slot]);
          }
          links[child_it->first] = slot;
          slots[slot] = child_it->first;
        }
        break;
      }
      case 2: {  // map a foreign frame (must always fail)
        if (declared.empty()) {
          break;
        }
        auto parent_it = declared.begin();
        std::advance(parent_it, static_cast<long>(rng.NextBelow(declared.size())));
        uint64_t slot = parent_it->first + rng.NextBelow(kPtEntries) * 8;
        uint64_t foreign = foreign_frames_[rng.NextBelow(foreign_frames_.size())];
        uint64_t sanitized = 0;
        PtpVerdict v =
            monitor_.CheckStore(slot, MakePte(foreign, kPteP | kPteW), parent_it->second, 0,
                                &sanitized);
        EXPECT_EQ(v, PtpVerdict::kForeignFrame)
            << "foreign frames must never be mappable";
        break;
      }
      case 3: {  // unlink a slot (store zero)
        if (slots.empty()) {
          break;
        }
        auto slot_it = slots.begin();
        std::advance(slot_it, static_cast<long>(rng.NextBelow(slots.size())));
        int parent_level = 0;
        for (const auto& [pa, level] : declared) {
          if (slot_it->first >= pa && slot_it->first < pa + kPageSize) {
            parent_level = level;
            break;
          }
        }
        uint64_t sanitized = 0;
        PtpVerdict v = monitor_.CheckStore(slot_it->first, 0, parent_level, 0, &sanitized);
        if (v == PtpVerdict::kOk) {
          links.erase(slot_it->second);
          slots.erase(slot_it);
        }
        break;
      }
    }
  }
  // Invariant: the monitor never accepted a kernel-executable mapping or a
  // foreign frame, and declarations match the model.
  EXPECT_EQ(monitor_.declared_ptps(), declared.size());
  for (const auto& [pa, level] : declared) {
    EXPECT_TRUE(monitor_.IsPtp(pa));
    EXPECT_EQ(monitor_.PtpLevel(pa), level);
  }
}

TEST_P(MonitorPropertyTest, UndeclareOnlyWhenUnlinked) {
  Rng rng(GetParam() * 31 + 7);
  uint64_t parent = own_frames_[0];
  uint64_t child = own_frames_[1];
  ASSERT_EQ(monitor_.DeclarePtp(parent, 2), PtpVerdict::kOk);
  ASSERT_EQ(monitor_.DeclarePtp(child, 1), PtpVerdict::kOk);
  uint64_t slot = parent + rng.NextBelow(kPtEntries) * 8;
  uint64_t sanitized = 0;
  ASSERT_EQ(monitor_.CheckStore(slot, MakePte(child, kPteP | kPteW), 2, 0, &sanitized),
            PtpVerdict::kOk);
  EXPECT_EQ(monitor_.UndeclarePtp(child), PtpVerdict::kPtpAlreadyLinked);
  ASSERT_EQ(monitor_.CheckStore(slot, 0, 2, 0, &sanitized), PtpVerdict::kOk);
  EXPECT_EQ(monitor_.UndeclarePtp(child), PtpVerdict::kOk);
  EXPECT_FALSE(monitor_.IsPtp(child));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonitorPropertyTest,
                         ::testing::Values(1u, 42u, 1337u, 0xDEADBEEFu, 987654321u));

}  // namespace
}  // namespace cki
