// Tests for the request resilience layer (src/resil, DESIGN.md §13):
// circuit-breaker state machine, retry-budget token bucket, hedge
// planning, backoff/deadline arithmetic, the probe-driven health tracker,
// and the FaultKind name round-trip used by bench --chaos-kinds parsing.
#include <gtest/gtest.h>

#include "src/fault/fault_domain.h"
#include "src/fault/fault_injector.h"
#include "src/fault/gray_fault.h"
#include "src/resil/health.h"
#include "src/resil/resilience.h"

namespace cki {
namespace {

ResilConfig TestConfig() {
  ResilConfig cfg;
  cfg.breaker_threshold_x1000 = 500;
  cfg.breaker_min_samples = 4;
  cfg.breaker_open_ns = 1'000'000;
  cfg.breaker_half_open_probes = 2;
  cfg.breaker_bucket_ns = 100'000;
  cfg.breaker_buckets = 8;
  return cfg;
}

// --- circuit breaker ------------------------------------------------------

TEST(CircuitBreakerTest, ClosedUntilFailureRateCrossesThresholdAtMinSamples) {
  CircuitBreaker b(TestConfig());
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  // Three straight failures: under min_samples, still closed.
  EXPECT_FALSE(b.OnFailure(1'000));
  EXPECT_FALSE(b.OnFailure(2'000));
  EXPECT_FALSE(b.OnFailure(3'000));
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(b.Allow(4'000));
  // Fourth outcome reaches min_samples with 100% failures: trips.
  EXPECT_TRUE(b.OnFailure(4'000));
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(b.opens(), 1u);
}

TEST(CircuitBreakerTest, MajoritySuccessKeepsItClosed) {
  CircuitBreaker b(TestConfig());
  for (SimNanos t = 1'000; t <= 16'000; t += 1'000) {
    if (t % 4'000 == 0) {
      b.OnFailure(t);  // 25% failure rate, threshold is 50%
    } else {
      b.OnSuccess(t);
    }
  }
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(b.opens(), 0u);
}

TEST(CircuitBreakerTest, OpenShortCircuitsThenHalfOpenAdmitsProbeQuota) {
  ResilConfig cfg = TestConfig();
  CircuitBreaker b(cfg);
  for (SimNanos t = 1'000; t <= 4'000; t += 1'000) {
    b.OnFailure(t);
  }
  ASSERT_EQ(b.state(), CircuitBreaker::State::kOpen);

  // While open and not yet cooled: everything short-circuits.
  EXPECT_FALSE(b.Allow(10'000));
  EXPECT_FALSE(b.Allow(500'000));
  EXPECT_EQ(b.short_circuits(), 2u);

  // Cooled past breaker_open_ns: half-open, admits exactly the probe quota.
  const SimNanos cooled = 4'000 + cfg.breaker_open_ns;
  EXPECT_TRUE(b.Allow(cooled));
  EXPECT_EQ(b.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(b.Allow(cooled + 1));
  EXPECT_FALSE(b.Allow(cooled + 2));  // quota (2) exhausted
}

TEST(CircuitBreakerTest, HalfOpenClosesAfterProbeSuccessesAndWipesHistory) {
  ResilConfig cfg = TestConfig();
  CircuitBreaker b(cfg);
  for (SimNanos t = 1'000; t <= 4'000; t += 1'000) {
    b.OnFailure(t);
  }
  const SimNanos cooled = 4'000 + cfg.breaker_open_ns;
  ASSERT_TRUE(b.Allow(cooled));
  ASSERT_TRUE(b.Allow(cooled + 1));
  b.OnSuccess(cooled + 10);
  EXPECT_EQ(b.state(), CircuitBreaker::State::kHalfOpen);
  b.OnSuccess(cooled + 20);
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  // The pre-open failure window was wiped on close: one new failure must
  // not re-trip against stale history.
  EXPECT_FALSE(b.OnFailure(cooled + 30));
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, AnyHalfOpenFailureReTrips) {
  ResilConfig cfg = TestConfig();
  CircuitBreaker b(cfg);
  for (SimNanos t = 1'000; t <= 4'000; t += 1'000) {
    b.OnFailure(t);
  }
  const SimNanos cooled = 4'000 + cfg.breaker_open_ns;
  ASSERT_TRUE(b.Allow(cooled));
  b.OnSuccess(cooled + 10);
  ASSERT_TRUE(b.Allow(cooled + 20));
  EXPECT_TRUE(b.OnFailure(cooled + 30));  // one bad probe slams it shut
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(b.opens(), 2u);
  // The open hold restarts from the re-trip instant.
  EXPECT_FALSE(b.Allow(cooled + 40));
}

// --- retry budget ---------------------------------------------------------

TEST(RetryBudgetTest, ExhaustsAtCapAndCountsDenials) {
  RetryBudget budget(/*ratio=*/0.0, /*cap=*/3);
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_TRUE(budget.TryAcquire());
  // Bucket dry, no successes refilling it: every further retry is denied.
  EXPECT_FALSE(budget.TryAcquire());
  EXPECT_FALSE(budget.TryAcquire());
  EXPECT_EQ(budget.granted(), 3u);
  EXPECT_EQ(budget.denied(), 2u);
}

TEST(RetryBudgetTest, SuccessesRefillAtRatioAndClampAtCap) {
  RetryBudget budget(/*ratio=*/0.5, /*cap=*/2);
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_FALSE(budget.TryAcquire());
  // Two successes deposit one whole token.
  budget.OnSuccess();
  EXPECT_FALSE(budget.TryAcquire());  // 0.5 tokens: still short of one
  budget.OnSuccess();
  EXPECT_TRUE(budget.TryAcquire());
  // Refill clamps at cap: retry volume stays <= cap + ratio * successes.
  for (int i = 0; i < 100; ++i) {
    budget.OnSuccess();
  }
  EXPECT_EQ(budget.tokens(), 2.0);
}

// --- hedge planning -------------------------------------------------------

TEST(HedgePlanTest, PrimaryWinCancelsTheHedge) {
  ResilConfig cfg;
  cfg.hedge_floor_ns = 50'000;
  // Primary finishes at issue+40k, before the 50k floor: never fires.
  HedgePlan plan = PlanHedge(cfg, /*issue=*/100'000, /*primary_finish=*/140'000,
                             /*observed_delay=*/30'000);
  EXPECT_TRUE(plan.scheduled);
  EXPECT_FALSE(plan.fired);
  EXPECT_EQ(plan.fire_at, 150'000u);
}

TEST(HedgePlanTest, SlowPrimaryFiresAtObservedQuantileDelay) {
  ResilConfig cfg;
  cfg.hedge_floor_ns = 50'000;
  HedgePlan plan = PlanHedge(cfg, /*issue=*/100'000, /*primary_finish=*/400'000,
                             /*observed_delay=*/120'000);
  EXPECT_TRUE(plan.scheduled);
  EXPECT_TRUE(plan.fired);
  EXPECT_EQ(plan.fire_at, 220'000u);  // issue + observed (above the floor)
}

TEST(HedgePlanTest, DisabledConfigNeverSchedules) {
  ResilConfig off;
  off.enabled = false;
  EXPECT_FALSE(PlanHedge(off, 0, 1'000'000, 10'000).scheduled);
  ResilConfig no_quantile;
  no_quantile.hedge_quantile = 0;
  EXPECT_FALSE(PlanHedge(no_quantile, 0, 1'000'000, 10'000).scheduled);
}

// --- backoff / deadline arithmetic ----------------------------------------

TEST(BackoffTest, DoublesFromBaseAndSaturatesAtCap) {
  ResilConfig cfg;
  cfg.backoff_base_ns = 20'000;
  cfg.backoff_cap_ns = 100'000;
  EXPECT_EQ(BackoffNs(cfg, 1), 20'000u);
  EXPECT_EQ(BackoffNs(cfg, 2), 40'000u);
  EXPECT_EQ(BackoffNs(cfg, 3), 80'000u);
  EXPECT_EQ(BackoffNs(cfg, 4), 100'000u);   // capped
  EXPECT_EQ(BackoffNs(cfg, 60), 100'000u);  // shift clamped, still capped
}

TEST(BackoffTest, DeadlineExpiredRetryIsDropped) {
  // The retry-gate arithmetic the serve loop uses: a retry whose re-issue
  // time lands past the deadline must not be attempted at all.
  ResilConfig cfg;
  cfg.deadline_ns = 500'000;
  cfg.attempt_timeout_ns = 300'000;
  cfg.backoff_base_ns = 20'000;
  const SimNanos arrival = 1'000'000;
  const SimNanos deadline = arrival + cfg.deadline_ns;
  // Attempt 1 blackholed at arrival: detected at +300k, retry at +320k —
  // inside the deadline, so the retry proceeds.
  SimNanos detect = arrival + cfg.attempt_timeout_ns;
  SimNanos next_issue = detect + BackoffNs(cfg, 1);
  EXPECT_LT(next_issue, deadline);
  // Attempt 2 blackholed too: the would-be third attempt starts past the
  // deadline and is dropped instead of issued.
  detect = next_issue + cfg.attempt_timeout_ns;
  next_issue = detect + BackoffNs(cfg, 2);
  EXPECT_GE(next_issue, deadline);
}

TEST(RetryableErrnoTest, TransientYesStructuralNo) {
  EXPECT_TRUE(IsRetryableErrno(kEBUSY));
  EXPECT_TRUE(IsRetryableErrno(kEAGAIN));
  EXPECT_FALSE(IsRetryableErrno(kECONNREFUSED));
  EXPECT_FALSE(IsRetryableErrno(kEADDRINUSE));
  EXPECT_FALSE(IsRetryableErrno(0));
}

// --- health tracker -------------------------------------------------------

TEST(HealthTrackerTest, InnocentUntilProbedThenTracksDegradation) {
  HealthTracker h;
  EXPECT_EQ(h.score_x1000(), 1000u);  // no probe yet: full health
  h.Observe(10'000);
  EXPECT_EQ(h.score_x1000(), 1000u);  // first probe defines the baseline
  // A 4x-slower machine decays toward 250 as probes accumulate.
  for (int i = 0; i < 32; ++i) {
    h.Observe(40'000);
  }
  EXPECT_LT(h.score_x1000(), 400u);
  EXPECT_GE(h.score_x1000(), 250u);
  // Recovery pulls the score back up — gray is not a death sentence.
  for (int i = 0; i < 32; ++i) {
    h.Observe(10'000);
  }
  EXPECT_GT(h.score_x1000(), 900u);
}

TEST(HealthTrackerTest, BaselineIsRunningMinAndResetClears) {
  HealthTracker h;
  h.Observe(40'000);
  h.Observe(10'000);  // faster probe lowers the baseline
  EXPECT_EQ(h.baseline_ns(), 10'000u);
  h.Reset();
  EXPECT_EQ(h.probes(), 0u);
  EXPECT_EQ(h.score_x1000(), 1000u);
}

// --- FaultKind name round-trip (bench --chaos-kinds parsing) --------------

TEST(FaultKindNameTest, EveryKindRoundTripsAndUnknownIsNullopt) {
  for (size_t i = 0; i < static_cast<size_t>(FaultKind::kCount); ++i) {
    const FaultKind kind = static_cast<FaultKind>(i);
    auto parsed = FaultKindFromName(FaultKindName(kind));
    ASSERT_TRUE(parsed.has_value()) << FaultKindName(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(FaultKindFromName("not-a-fault").has_value());
  EXPECT_FALSE(FaultKindFromName("").has_value());
}

TEST(FaultKindNameTest, GrayKindsAreNamed) {
  EXPECT_EQ(FaultKindFromName("latency_inflation"), FaultKind::kLatencyInflation);
  EXPECT_EQ(FaultKindFromName("throughput_throttle"), FaultKind::kThroughputThrottle);
  EXPECT_EQ(FaultKindFromName("packet_blackhole"), FaultKind::kPacketBlackhole);
  EXPECT_EQ(FaultKindFromName("syscall_jitter"), FaultKind::kSyscallJitter);
}

// --- gray episode model ---------------------------------------------------

TEST(GrayFaultTest, EpisodesOpenFromInjectorDrawsAndExpire) {
  InjectorConfig ic;
  ic.seed = 7;
  ic.latency_inflation_rate = 1.0;
  ic.syscall_jitter_rate = 1.0;
  FaultInjector injector(ic);
  GrayConfig gc;
  gc.episode_ns = 1'000'000;
  GrayFault gray(gc);

  EXPECT_FALSE(gray.AnyOpen(0));
  EXPECT_EQ(gray.LatencyMultX1000(0), 1000u);
  gray.Advance(0, injector, nullptr);
  EXPECT_TRUE(gray.LatencyInflated(500'000));
  EXPECT_TRUE(gray.JitterOpen(500'000));
  EXPECT_EQ(gray.LatencyMultX1000(500'000), gc.latency_mult_x1000);
  // DegradeServiceNs applies the multiplier plus a jitter draw.
  EXPECT_GE(gray.DegradeServiceNs(10'000, 500'000), 30'000u);
  // Past episode_ns the machine is healthy again and draws stop.
  EXPECT_FALSE(gray.AnyOpen(1'000'001));
  EXPECT_EQ(gray.DegradeServiceNs(10'000, 1'000'001), 10'000u);
  EXPECT_EQ(gray.episodes(), 2u);
}

TEST(GrayFaultTest, DisarmedSitesConsumeNoDrawsAndStayHealthy) {
  InjectorConfig ic;
  ic.seed = 7;  // no gray rates armed
  FaultInjector injector(ic);
  GrayConfig gc;
  GrayFault gray(gc);
  for (SimNanos t = 0; t < 10; ++t) {
    gray.Advance(t * 1'000'000, injector, nullptr);
  }
  EXPECT_EQ(gray.episodes(), 0u);
  EXPECT_FALSE(gray.AnyOpen(5'000'000));
  EXPECT_EQ(gray.trace_hash(), GrayFault(gc).trace_hash());
}

}  // namespace
}  // namespace cki
