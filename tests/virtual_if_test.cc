// Tests for the para-virtual interrupt state (Table 3: sti/cli/popf are
// blocked; the guest keeps its interrupt flag as an in-memory bit, and the
// host defers virtual-interrupt injection while it is clear — without ever
// losing its own ability to interrupt the guest).
#include <gtest/gtest.h>

#include "src/cki/cki_engine.h"
#include "src/hw/pks.h"
#include "src/runtime/runtime.h"

namespace cki {
namespace {

class VirtualIfTest : public ::testing::Test {
 protected:
  VirtualIfTest() : bed_(RuntimeKind::kCki, Deployment::kBareMetal) {}

  CkiEngine& engine() { return static_cast<CkiEngine&>(bed_.engine()); }

  Testbed bed_;
};

TEST_F(VirtualIfTest, InjectionIsImmediateWhenEnabled) {
  EXPECT_TRUE(engine().virtual_if());
  EXPECT_TRUE(engine().InjectVirq(kVecVirtioNet));
  EXPECT_EQ(engine().delivered_virqs(), 1u);
  EXPECT_EQ(engine().pending_virqs(), 0u);
}

TEST_F(VirtualIfTest, InjectionDefersWhileGuestMasksVirtually) {
  engine().GuestSetVirtualIf(false);
  EXPECT_FALSE(engine().InjectVirq(kVecVirtioNet));
  EXPECT_FALSE(engine().InjectVirq(kVecVirtioBlk));
  EXPECT_EQ(engine().pending_virqs(), 2u);
  EXPECT_EQ(engine().delivered_virqs(), 0u);
  // Re-enabling drains the queue.
  engine().GuestSetVirtualIf(true);
  EXPECT_EQ(engine().pending_virqs(), 0u);
  EXPECT_EQ(engine().delivered_virqs(), 2u);
}

TEST_F(VirtualIfTest, VirtualMaskDoesNotBlockHardwareInterrupts) {
  // The whole point: the virtual IF is guest-local politeness; the host's
  // timer still lands through the interrupt gate regardless.
  engine().GuestSetVirtualIf(false);
  Cpu& cpu = bed_.machine().cpu();
  cpu.set_cpl(Cpl::kKernel);
  cpu.SetPkrsDirect(kPkrsGuest);
  EXPECT_TRUE(engine().DeliverHardwareInterrupt(kVecTimer))
      << "hardware interrupts must be unmaskable by the guest";
  engine().GuestSetVirtualIf(true);
}

TEST_F(VirtualIfTest, MaskingCostsNoTrap) {
  auto before = bed_.ctx().trace().Snapshot();
  SimNanos t0 = bed_.ctx().clock().now();
  engine().GuestSetVirtualIf(false);
  engine().GuestSetVirtualIf(true);
  EXPECT_LT(bed_.ctx().clock().now() - t0, 10u) << "in-memory bit: a couple of stores";
  EXPECT_EQ(CountDelta(before, bed_.ctx().trace(), PathEvent::kHypercall), 0u);
  EXPECT_EQ(CountDelta(before, bed_.ctx().trace(), PathEvent::kPrivInstrTrap), 0u);
}

TEST_F(VirtualIfTest, RealCliRemainsBlocked) {
  Cpu& cpu = bed_.machine().cpu();
  cpu.set_cpl(Cpl::kKernel);
  cpu.SetPkrsDirect(kPkrsGuest);
  EXPECT_EQ(cpu.ExecPriv(PrivInstr::kCli).type, FaultType::kPrivInstrBlocked)
      << "the virtual flag replaces cli; the instruction itself stays blocked";
}

}  // namespace
}  // namespace cki
