// Tests for the host frame allocator: ownership tracking, free-list reuse,
// and contiguous segment carving (the CKI delegation primitive).
#include <gtest/gtest.h>

#include "src/host/frame_allocator.h"

namespace cki {
namespace {

class FrameAllocatorTest : public ::testing::Test {
 protected:
  FrameAllocatorTest() : alloc_(mem_, 0x1000'0000, 1024) {}

  PhysMem mem_;
  FrameAllocator alloc_;
};

TEST_F(FrameAllocatorTest, AllocatesDistinctInstalledFrames) {
  uint64_t a = alloc_.AllocFrame(1);
  uint64_t b = alloc_.AllocFrame(1);
  EXPECT_NE(a, b);
  EXPECT_TRUE(mem_.HasFrame(a));
  EXPECT_TRUE(mem_.HasFrame(b));
  EXPECT_EQ(alloc_.allocated_frames(), 2u);
}

TEST_F(FrameAllocatorTest, TracksOwnership) {
  uint64_t a = alloc_.AllocFrame(7);
  EXPECT_EQ(alloc_.OwnerOf(a), 7u);
  EXPECT_EQ(alloc_.OwnerOf(a + 0x123), 7u);  // same frame
  alloc_.FreeFrame(a);
  EXPECT_EQ(alloc_.OwnerOf(a), kHostOwner);
}

TEST_F(FrameAllocatorTest, FreeListRecyclesAndZeroes) {
  uint64_t a = alloc_.AllocFrame(1);
  mem_.WriteU64(a, 0xFFFF);
  alloc_.FreeFrame(a);
  uint64_t b = alloc_.AllocFrame(2);
  EXPECT_EQ(b, a);
  EXPECT_EQ(mem_.ReadU64(b), 0u) << "recycled frames must be zeroed";
}

TEST_F(FrameAllocatorTest, SegmentsAreContiguousAndOwned) {
  PhysSegment seg = alloc_.AllocSegment(64, 9);
  EXPECT_EQ(seg.pages, 64u);
  EXPECT_EQ(seg.end() - seg.base, 64 * kPageSize);
  for (uint64_t pa = seg.base; pa < seg.end(); pa += kPageSize) {
    EXPECT_EQ(alloc_.OwnerOf(pa), 9u);
    EXPECT_TRUE(mem_.HasFrame(pa));
  }
  // The next single frame does not alias the segment.
  uint64_t next = alloc_.AllocFrame(1);
  EXPECT_FALSE(seg.Contains(next));
}

TEST_F(FrameAllocatorTest, SegmentContains) {
  PhysSegment seg{.base = 0x2000, .pages = 2};
  EXPECT_TRUE(seg.Contains(0x2000));
  EXPECT_TRUE(seg.Contains(0x3FFF));
  EXPECT_FALSE(seg.Contains(0x4000));
  EXPECT_FALSE(seg.Contains(0x1FFF));
}

// --- copy-on-write sharing (src/snap clones) -------------------------------

TEST_F(FrameAllocatorTest, ShareAndReleaseBySharer) {
  uint64_t a = alloc_.AllocFrame(1);
  EXPECT_FALSE(alloc_.IsShared(a));
  alloc_.ShareFrame(a, 2);
  EXPECT_TRUE(alloc_.IsShared(a));
  EXPECT_TRUE(alloc_.OwnedOrSharedBy(a, 1));
  EXPECT_TRUE(alloc_.OwnedOrSharedBy(a, 2));
  EXPECT_FALSE(alloc_.OwnedOrSharedBy(a, 3));
  EXPECT_EQ(alloc_.SharedFrames(2), 1u);

  // The sharer drops its share: frame stays allocated, owned by 1.
  EXPECT_TRUE(alloc_.ReleaseShare(a, 2));
  EXPECT_FALSE(alloc_.IsShared(a));
  EXPECT_EQ(alloc_.OwnerOf(a), 1u);
  EXPECT_EQ(alloc_.SharedFrames(2), 0u);
  // An unshared frame is the caller's to free normally.
  EXPECT_FALSE(alloc_.ReleaseShare(a, 1));
}

TEST_F(FrameAllocatorTest, ReleaseByPrimaryTransfersPrimacy) {
  uint64_t a = alloc_.AllocFrame(1);
  alloc_.ShareFrame(a, 2);
  alloc_.ShareFrame(a, 3);
  EXPECT_TRUE(alloc_.ReleaseShare(a, 1));
  EXPECT_EQ(alloc_.OwnerOf(a), 2u) << "first sharer inherits primacy";
  EXPECT_TRUE(alloc_.IsShared(a)) << "sharer 3 still holds a share";
  EXPECT_FALSE(alloc_.OwnedOrSharedBy(a, 1));
}

TEST_F(FrameAllocatorTest, FreeFrameOnSharedTransfersInsteadOfFreeing) {
  uint64_t a = alloc_.AllocFrame(1);
  alloc_.ShareFrame(a, 2);
  uint64_t before = alloc_.allocated_frames();
  EXPECT_EQ(alloc_.FreeFrame(a), FreeResult::kOk);
  EXPECT_EQ(alloc_.allocated_frames(), before) << "shared frame must not hit the free list";
  EXPECT_EQ(alloc_.OwnerOf(a), 2u);
}

TEST_F(FrameAllocatorTest, ReclaimOwnerSpareSharedSingletons) {
  // Owner 1 holds two frames; frame `a` is shared with clone 2.
  uint64_t a = alloc_.AllocFrame(1);
  uint64_t b = alloc_.AllocFrame(1);
  alloc_.ShareFrame(a, 2);
  uint64_t freed = alloc_.ReclaimOwner(1);
  EXPECT_EQ(freed, 1u) << "only the unshared frame is freed";
  EXPECT_EQ(alloc_.OwnerOf(a), 2u) << "shared frame transfers to the clone";
  EXPECT_EQ(alloc_.OwnerOf(b), kHostOwner);
  EXPECT_FALSE(alloc_.IsShared(a));
}

TEST_F(FrameAllocatorTest, ReclaimDyingSharerDropsItsShares) {
  uint64_t a = alloc_.AllocFrame(1);
  alloc_.ShareFrame(a, 2);
  // Clone 2 dies: its share evaporates; owner 1 keeps the frame.
  uint64_t freed = alloc_.ReclaimOwner(2);
  EXPECT_EQ(freed, 0u);
  EXPECT_EQ(alloc_.OwnerOf(a), 1u);
  EXPECT_FALSE(alloc_.IsShared(a));
  EXPECT_EQ(alloc_.SharedFrames(2), 0u);
}

TEST_F(FrameAllocatorTest, ReclaimSegmentOwnerCarvesSharedPages) {
  PhysSegment seg = alloc_.AllocSegment(8, 9);
  uint64_t shared_pa = seg.base + 3 * kPageSize;
  alloc_.ShareFrame(shared_pa, 2);
  uint64_t freed = alloc_.ReclaimOwner(9);
  EXPECT_EQ(freed, 7u) << "segment sweep skips the page a clone still shares";
  EXPECT_EQ(alloc_.OwnerOf(shared_pa), 2u) << "carved page transfers to the sharer";
  EXPECT_EQ(alloc_.OwnedFrames(9), 0u);
  EXPECT_EQ(alloc_.OwnedFrames(2), 1u);
  // The clone's later death frees the carved page for good.
  EXPECT_EQ(alloc_.ReclaimOwner(2), 1u);
  EXPECT_EQ(alloc_.OwnerOf(shared_pa), kHostOwner);
}

TEST_F(FrameAllocatorTest, OwnedFramesExcludesCarvedSegmentPages) {
  PhysSegment seg = alloc_.AllocSegment(4, 9);
  EXPECT_EQ(alloc_.OwnedFrames(9), 4u);
  alloc_.ShareFrame(seg.base, 2);
  // Primary releases one page to the sharer; the carved page moves owners.
  EXPECT_TRUE(alloc_.ReleaseShare(seg.base, 9));
  EXPECT_EQ(alloc_.OwnerOf(seg.base), 2u);
  EXPECT_EQ(alloc_.OwnedFrames(9), 3u);
  EXPECT_EQ(alloc_.OwnedFrames(2), 1u);
}

}  // namespace
}  // namespace cki
