// Tests for the host frame allocator: ownership tracking, free-list reuse,
// and contiguous segment carving (the CKI delegation primitive).
#include <gtest/gtest.h>

#include "src/host/frame_allocator.h"

namespace cki {
namespace {

class FrameAllocatorTest : public ::testing::Test {
 protected:
  FrameAllocatorTest() : alloc_(mem_, 0x1000'0000, 1024) {}

  PhysMem mem_;
  FrameAllocator alloc_;
};

TEST_F(FrameAllocatorTest, AllocatesDistinctInstalledFrames) {
  uint64_t a = alloc_.AllocFrame(1);
  uint64_t b = alloc_.AllocFrame(1);
  EXPECT_NE(a, b);
  EXPECT_TRUE(mem_.HasFrame(a));
  EXPECT_TRUE(mem_.HasFrame(b));
  EXPECT_EQ(alloc_.allocated_frames(), 2u);
}

TEST_F(FrameAllocatorTest, TracksOwnership) {
  uint64_t a = alloc_.AllocFrame(7);
  EXPECT_EQ(alloc_.OwnerOf(a), 7u);
  EXPECT_EQ(alloc_.OwnerOf(a + 0x123), 7u);  // same frame
  alloc_.FreeFrame(a);
  EXPECT_EQ(alloc_.OwnerOf(a), kHostOwner);
}

TEST_F(FrameAllocatorTest, FreeListRecyclesAndZeroes) {
  uint64_t a = alloc_.AllocFrame(1);
  mem_.WriteU64(a, 0xFFFF);
  alloc_.FreeFrame(a);
  uint64_t b = alloc_.AllocFrame(2);
  EXPECT_EQ(b, a);
  EXPECT_EQ(mem_.ReadU64(b), 0u) << "recycled frames must be zeroed";
}

TEST_F(FrameAllocatorTest, SegmentsAreContiguousAndOwned) {
  PhysSegment seg = alloc_.AllocSegment(64, 9);
  EXPECT_EQ(seg.pages, 64u);
  EXPECT_EQ(seg.end() - seg.base, 64 * kPageSize);
  for (uint64_t pa = seg.base; pa < seg.end(); pa += kPageSize) {
    EXPECT_EQ(alloc_.OwnerOf(pa), 9u);
    EXPECT_TRUE(mem_.HasFrame(pa));
  }
  // The next single frame does not alias the segment.
  uint64_t next = alloc_.AllocFrame(1);
  EXPECT_FALSE(seg.Contains(next));
}

TEST_F(FrameAllocatorTest, SegmentContains) {
  PhysSegment seg{.base = 0x2000, .pages = 2};
  EXPECT_TRUE(seg.Contains(0x2000));
  EXPECT_TRUE(seg.Contains(0x3FFF));
  EXPECT_FALSE(seg.Contains(0x4000));
  EXPECT_FALSE(seg.Contains(0x1FFF));
}

}  // namespace
}  // namespace cki
