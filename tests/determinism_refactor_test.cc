// Regression tests for the ISSUE-9 raw-speed refactor (DESIGN.md §14).
//
// The refactor swapped hash maps for direct-indexed tables (FrameAllocator
// owner nodes, engine GfnMaps, the PVM shadow-root vector) and batched the
// FNV-1a digest mixing. None of that may change a single simulated result:
//
//  * the canonical FNV-1a helpers must be bit-identical to the chained
//    per-word form every subsystem used before;
//  * the kill-sweep free list must return frames in ascending PA order *by
//    construction* — never because some container happened to iterate a
//    hash map in a lucky order;
//  * a kill/reap cycle must return the allocator to its exact pre-alloc
//    frame footprint, so a re-admitted container replays on the same
//    frames (arena reuse);
//  * the full Figure-13 sweep (sampling off) must replay bit-identical to
//    the pre-refactor golden hash at --threads 1, 2 and 8.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "bench/fig13_cells.h"
#include "src/cki/cki_engine.h"
#include "src/cluster/sim_cluster.h"
#include "src/host/frame_allocator.h"
#include "src/runtime/gfn_map.h"
#include "src/runtime/runtime.h"
#include "src/sim/fnv.h"
#include "src/snap/snapshot.h"

namespace cki {
namespace {

// --- canonical FNV-1a --------------------------------------------------------

TEST(CanonicalFnvTest, BatchedWordsMatchChainedMix) {
  const uint64_t words[] = {0, 1, 0xdeadbeefULL, ~0ULL, 0x0123456789abcdefULL};
  uint64_t chained = kFnvOffsetBasis;
  for (uint64_t w : words) {
    chained = FnvMix64(chained, w);
  }
  EXPECT_EQ(FnvMixWords(kFnvOffsetBasis, words, std::size(words)), chained);
}

TEST(CanonicalFnvTest, Mix64IsByteWiseLittleEndian) {
  // FnvMix64 must equal folding the value's 8 bytes LSB-first — the layout
  // every pre-refactor subsystem used, so digests cannot silently change.
  const uint64_t v = 0x1122334455667788ULL;
  uint64_t by_bytes = kFnvOffsetBasis;
  for (int i = 0; i < 8; ++i) {
    by_bytes = FnvMixByte(by_bytes, static_cast<uint8_t>(v >> (i * 8)));
  }
  EXPECT_EQ(FnvMix64(kFnvOffsetBasis, v), by_bytes);
  // The published FNV-1a constants, not lookalikes.
  EXPECT_EQ(kFnvOffsetBasis, 0xcbf29ce484222325ULL);
  EXPECT_EQ(kFnvPrime, 0x100000001b3ULL);
}

TEST(CanonicalFnvTest, BytesHelperMatchesByteLoop) {
  const uint8_t data[] = {0x00, 0xff, 0x42, 0x13, 0x37};
  uint64_t loop = kFnvOffsetBasis;
  for (uint8_t b : data) {
    loop = FnvMixByte(loop, b);
  }
  EXPECT_EQ(FnvMixBytes(kFnvOffsetBasis, data, sizeof(data)), loop);
}

// --- container-order independence -------------------------------------------

// The kill sweep must hand frames back in ascending PA order no matter how
// the dying owner's frames were interleaved with other owners' — the order
// is a property of the direct-indexed table, not of allocation history.
TEST(ReclaimOrderTest, KillSweepFreesAscendingRegardlessOfAllocOrder) {
  PhysMem mem;
  FrameAllocator alloc(mem, 0x1000'0000, 256);
  // Interleave two owners so owner 1's frames are non-contiguous.
  std::vector<uint64_t> owner1_frames;
  for (int i = 0; i < 12; ++i) {
    uint64_t pa = alloc.AllocFrame(i % 3 == 0 ? 2 : 1);
    if (i % 3 != 0) {
      owner1_frames.push_back(pa);
    }
  }
  ASSERT_EQ(alloc.ReclaimOwner(1), owner1_frames.size());
  // The free list is a stack, so re-allocation drains it highest-PA first:
  // exactly the reverse of ascending sweep order.
  for (auto it = owner1_frames.rbegin(); it != owner1_frames.rend(); ++it) {
    EXPECT_EQ(alloc.AllocFrame(5), *it);
  }
}

// Same scenario with the *other* interleaving: the reclaimed set is
// different, but the ascending-order guarantee holds identically.
TEST(ReclaimOrderTest, OrderGuaranteeIsConstructionalNotHistorical) {
  PhysMem mem;
  FrameAllocator a(mem, 0x1000'0000, 256);
  PhysMem mem2;
  FrameAllocator b(mem2, 0x1000'0000, 256);
  // a: owner 1 gets even slots; b: owner 1 gets odd slots.
  for (int i = 0; i < 16; ++i) {
    a.AllocFrame(i % 2 == 0 ? 1 : 2);
    b.AllocFrame(i % 2 == 0 ? 2 : 1);
  }
  a.ReclaimOwner(1);
  b.ReclaimOwner(1);
  uint64_t prev_a = 0;
  uint64_t prev_b = 0;
  for (int i = 0; i < 8; ++i) {
    // Drain both free lists; each yields strictly descending PAs (stack of
    // an ascending sweep), proving neither depends on insertion history.
    uint64_t fa = a.AllocFrame(9);
    uint64_t fb = b.AllocFrame(9);
    if (i > 0) {
      EXPECT_LT(fa, prev_a);
      EXPECT_LT(fb, prev_b);
    }
    prev_a = fa;
    prev_b = fb;
  }
}

TEST(GfnMapTest, DirectIndexedLookupAndAbsentSentinel) {
  GfnMap map(/*base_gfn=*/100);
  EXPECT_EQ(map.Get(100), 0u);  // absent
  EXPECT_EQ(map.Get(99), 0u);   // below base: safely absent (unsigned wrap)
  map.Set(100, 0x1'0000'0000ULL);
  map.Set(163, 0x1'0004'0000ULL);
  EXPECT_EQ(map.Get(100), 0x1'0000'0000ULL);
  EXPECT_EQ(map.Get(163), 0x1'0004'0000ULL);
  EXPECT_EQ(map.Get(130), 0u);  // in range, never set
  map.Erase(100);
  EXPECT_EQ(map.Get(100), 0u);
  map.Clear();
  EXPECT_EQ(map.Get(163), 0u);
}

// --- arena reuse: exact pre-alloc footprint after kill/reap ------------------

TEST(ArenaReuseTest, KillReapRestoresExactFrameFootprint) {
  Machine machine(MachineConfigFor(RuntimeKind::kCki, Deployment::kBareMetal));
  auto tmpl = std::make_unique<CkiEngine>(machine, CkiAblation::kNone,
                                          /*segment_pages=*/1024);
  tmpl->Boot();
  tmpl->MmapAnon(32 * kPageSize, /*populate=*/true);
  const uint64_t baseline = machine.frames().allocated_frames();

  auto run_cycle = [&machine, &tmpl](std::vector<uint64_t>* footprint) {
    std::unique_ptr<ContainerEngine> clone = CloneContainer(*tmpl);
    uint64_t heap = clone->MmapAnon(16 * kPageSize, /*populate=*/false);
    for (int i = 0; i < 16; ++i) {
      clone->UserTouch(heap + i * kPageSize, /*write=*/true);
    }
    const OwnerId id = clone->id();
    footprint->push_back(machine.frames().allocated_frames());
    footprint->push_back(machine.frames().OwnedFrames(id));
    clone->KillFromFault();
    clone.reset();
    EXPECT_EQ(machine.frames().OwnedFrames(id), 0u);
    EXPECT_EQ(machine.frames().SharedFrames(id), 0u);
  };

  std::vector<uint64_t> first, second;
  run_cycle(&first);
  // After the reap the allocator is back to the exact pre-clone footprint:
  // nothing leaked, nothing still carved.
  EXPECT_EQ(machine.frames().allocated_frames(), baseline);
  run_cycle(&second);
  EXPECT_EQ(machine.frames().allocated_frames(), baseline);
  // The second clone's footprint replays the first's exactly — same frame
  // count allocated, same count owned — i.e. the arena was *reused*, not
  // grown.
  EXPECT_EQ(first, second);
}

// --- golden replay: sampling-off bit-identical across thread counts ----------

// The full fig13 sweep replays to the pre-refactor golden hash at 1, 2 and
// 8 worker threads. This is the test-suite twin of the bench_ext_simspeed
// hard gate: any hot-path "optimisation" that moves a simulated result
// fails here before it can ship.
TEST(SimSpeedDeterminismTest, Fig13SweepMatchesPreRefactorGolden) {
  constexpr uint64_t kGoldenHash = 0x487be7a142a8c9daULL;
  const std::vector<Fig13Cell> cells = Fig13CellList();
  for (uint32_t threads : {1u, 2u, 8u}) {
    ClusterConfig cc;
    cc.shards = static_cast<uint32_t>(cells.size());
    cc.threads = threads;
    cc.root_seed = 42;  // cells draw no randomness; any seed must agree
    SimCluster cluster(cc);
    ClusterResult result = cluster.Run(
        [&cells](const ShardTask& task) { return RunFig13Cell(cells[task.index]); });
    ASSERT_TRUE(result.all_ok());
    EXPECT_EQ(result.trace_hash(), kGoldenHash)
        << "threads=" << threads
        << ": refactor changed simulated results, not just speed";
  }
}

}  // namespace
}  // namespace cki
