// Tests for the KSM auditor: a healthy container audits clean through
// heavy churn, and every seeded corruption class is detected.
#include <gtest/gtest.h>

#include "src/cki/ksm_audit.h"
#include "src/hw/pks.h"
#include "src/runtime/runtime.h"

namespace cki {
namespace {

class KsmAuditTest : public ::testing::Test {
 protected:
  KsmAuditTest() : bed_(RuntimeKind::kCki, Deployment::kBareMetal) {}

  CkiEngine& engine() { return static_cast<CkiEngine&>(bed_.engine()); }
  PhysMem& mem() { return bed_.machine().mem(); }

  // The leaf slot for `va` in the current process (faulting it in first).
  uint64_t LeafSlot(uint64_t va) {
    engine().UserTouch(va, false);  // text is R|X: read faults it in
    auto slot = engine().kernel().editor().FindLeafSlot(engine().kernel().current().pt_root, va);
    EXPECT_TRUE(slot.has_value());
    return *slot;
  }

  Testbed bed_;
};

TEST_F(KsmAuditTest, FreshContainerAuditsClean) {
  AuditReport report = AuditContainer(engine());
  EXPECT_TRUE(report.clean()) << report.violations.front();
  EXPECT_GT(report.ptps_walked, 0u);
  EXPECT_GT(report.entries_checked, 0u);
}

TEST_F(KsmAuditTest, CleanAfterHeavyChurn) {
  GuestKernel& kernel = engine().kernel();
  for (int round = 0; round < 5; ++round) {
    uint64_t heap = engine().MmapAnon(24 * kPageSize, true);
    engine().UserSyscall(SyscallRequest{
        .no = Sys::kMprotect, .arg0 = heap, .arg1 = 8 * kPageSize, .arg2 = kProtRead});
    SyscallResult child = engine().UserSyscall(SyscallRequest{.no = Sys::kFork});
    ASSERT_TRUE(child.ok());
    kernel.SwitchTo(static_cast<int>(child.value));
    engine().UserTouch(heap, false);
    engine().UserSyscall(SyscallRequest{.no = Sys::kExit});
    engine().UserSyscall(SyscallRequest{.no = Sys::kWaitpid});
    engine().UserSyscall(SyscallRequest{
        .no = Sys::kMunmap, .arg0 = heap, .arg1 = 24 * kPageSize});
  }
  AuditReport report = AuditContainer(engine());
  EXPECT_TRUE(report.clean()) << report.violations.front();
}

// Each corruption below models what a *bypassed* monitor would have let
// through (e.g. if the PKS write protection on PTPs were broken and the
// guest scribbled directly on its tables).

TEST_F(KsmAuditTest, DetectsForeignFrameMapping) {
  uint64_t slot = LeafSlot(kUserTextBase);
  mem().WriteU64(slot, MakePte(engine().ksm().ksm_region_pa(), kPteP | kPteW | kPteU | kPteNx));
  AuditReport report = AuditContainer(engine());
  ASSERT_FALSE(report.clean());
  EXPECT_NE(report.violations.front().find("A1"), std::string::npos);
}

TEST_F(KsmAuditTest, DetectsKernelExecutableLeaf) {
  uint64_t slot = LeafSlot(kUserTextBase);
  uint64_t frame = engine().AllocDataPage();
  mem().WriteU64(slot, MakePte(frame, kPteP));  // U=0, NX=0
  AuditReport report = AuditContainer(engine());
  ASSERT_FALSE(report.clean());
  EXPECT_NE(report.violations.front().find("A4"), std::string::npos);
}

TEST_F(KsmAuditTest, DetectsWritablePtpAlias) {
  uint64_t slot = LeafSlot(kUserTextBase);
  uint64_t root = engine().kernel().current().pt_root;
  mem().WriteU64(slot, MakePte(root, kPteP | kPteW | kPteNx));  // writable, no pkey
  AuditReport report = AuditContainer(engine());
  ASSERT_FALSE(report.clean());
  EXPECT_NE(report.violations.front().find("A5"), std::string::npos);
}

TEST_F(KsmAuditTest, DetectsDoubleLinkedPtp) {
  // Two PML4-adjacent VAs force two PDPTs; rewire the second PML4 slot to
  // the first PDPT (aliasing) behind the monitor's back.
  GuestKernel& kernel = engine().kernel();
  uint64_t va2 = 0x6100'0000'0000;
  kernel.current().vmas.Insert(Vma{.start = va2,
                                   .end = va2 + kPageSize,
                                   .prot = kProtRead | kProtWrite,
                                   .kind = VmaKind::kAnon});
  engine().UserTouch(kUserTextBase, false);
  engine().UserTouch(va2, true);
  uint64_t root = kernel.current().pt_root;
  int slot_a = PtIndex(kUserTextBase, kPtLevels);
  int slot_b = PtIndex(va2, kPtLevels);
  ASSERT_NE(slot_a, slot_b);
  uint64_t entry_a = mem().ReadU64(root + static_cast<uint64_t>(slot_a) * 8);
  mem().WriteU64(root + static_cast<uint64_t>(slot_b) * 8, entry_a);
  AuditReport report = AuditContainer(engine());
  ASSERT_FALSE(report.clean());
  EXPECT_NE(report.violations.front().find("A3"), std::string::npos);
}

TEST_F(KsmAuditTest, DetectsDivergedVcpuCopy) {
  uint64_t root = engine().kernel().current().pt_root;
  uint64_t copy = engine().ksm().TopLevelCopy(root, 0);
  ASSERT_NE(copy, 0u);
  // Corrupt one guest slot of the copy only.
  int slot = PtIndex(kUserTextBase, kPtLevels);
  engine().UserTouch(kUserTextBase, false);
  mem().WriteU64(copy + static_cast<uint64_t>(slot) * 8, MakePte(0xDEAD000, kPteP));
  AuditReport report = AuditContainer(engine());
  ASSERT_FALSE(report.clean());
  bool found_a6 = false;
  for (const std::string& v : report.violations) {
    found_a6 |= v.find("A6") != std::string::npos;
  }
  EXPECT_TRUE(found_a6);
}

}  // namespace
}  // namespace cki
