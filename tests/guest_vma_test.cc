// Unit tests for the VMA list of the model guest kernel.
#include <gtest/gtest.h>

#include "src/guest/vma.h"
#include "src/hw/phys_mem.h"

namespace cki {
namespace {

Vma Make(uint64_t start, uint64_t end, uint64_t prot = kProtRead | kProtWrite) {
  return Vma{.start = start, .end = end, .prot = prot};
}

TEST(VmaTest, InsertAndFind) {
  VmaList list;
  list.Insert(Make(0x1000, 0x5000));
  EXPECT_NE(list.Find(0x1000), nullptr);
  EXPECT_NE(list.Find(0x4FFF), nullptr);
  EXPECT_EQ(list.Find(0x5000), nullptr);
  EXPECT_EQ(list.Find(0x0FFF), nullptr);
}

TEST(VmaTest, RemoveWholeArea) {
  VmaList list;
  list.Insert(Make(0x1000, 0x5000));
  list.Remove(0x1000, 0x5000);
  EXPECT_EQ(list.Find(0x2000), nullptr);
  EXPECT_EQ(list.count(), 0u);
}

TEST(VmaTest, RemoveMiddleSplitsArea) {
  VmaList list;
  list.Insert(Make(0x1000, 0x9000));
  list.Remove(0x3000, 0x5000);
  EXPECT_NE(list.Find(0x2000), nullptr);
  EXPECT_EQ(list.Find(0x3000), nullptr);
  EXPECT_EQ(list.Find(0x4FFF), nullptr);
  EXPECT_NE(list.Find(0x5000), nullptr);
  EXPECT_EQ(list.count(), 2u);
}

TEST(VmaTest, RemoveAcrossMultipleAreas) {
  VmaList list;
  list.Insert(Make(0x1000, 0x3000));
  list.Insert(Make(0x4000, 0x6000));
  list.Insert(Make(0x7000, 0x9000));
  list.Remove(0x2000, 0x8000);
  EXPECT_NE(list.Find(0x1000), nullptr);
  EXPECT_EQ(list.Find(0x2000), nullptr);
  EXPECT_EQ(list.Find(0x5000), nullptr);
  EXPECT_EQ(list.Find(0x7000), nullptr);
  EXPECT_NE(list.Find(0x8000), nullptr);
}

TEST(VmaTest, ProtectSplitsAndRetags) {
  VmaList list;
  list.Insert(Make(0x1000, 0x9000, kProtRead | kProtWrite));
  ASSERT_TRUE(list.Protect(0x3000, 0x5000, kProtRead));
  EXPECT_EQ(list.Find(0x2000)->prot, kProtRead | kProtWrite);
  EXPECT_EQ(list.Find(0x3000)->prot, kProtRead);
  EXPECT_EQ(list.Find(0x4FFF)->prot, kProtRead);
  EXPECT_EQ(list.Find(0x5000)->prot, kProtRead | kProtWrite);
}

TEST(VmaTest, ProtectFailsOnUnmappedGap) {
  VmaList list;
  list.Insert(Make(0x1000, 0x3000));
  list.Insert(Make(0x5000, 0x7000));
  EXPECT_FALSE(list.Protect(0x2000, 0x6000, kProtRead));
}

TEST(VmaTest, FindFreeSkipsOccupiedRanges) {
  VmaList list;
  list.Insert(Make(0x1000, 0x3000));
  list.Insert(Make(0x3000, 0x6000));
  uint64_t free = list.FindFree(0x1000, 0x2000);
  EXPECT_GE(free, 0x6000u);
  // A gap large enough is used.
  list.Insert(Make(0x9000, 0xA000));
  EXPECT_EQ(list.FindFree(0x6000, 0x3000), 0x6000u);
}

TEST(VmaTest, FindFreeRespectsHintInsideArea) {
  VmaList list;
  list.Insert(Make(0x1000, 0x5000));
  EXPECT_GE(list.FindFree(0x2000, 0x1000), 0x5000u);
}

}  // namespace
}  // namespace cki
