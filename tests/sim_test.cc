// Tests for the simulation substrate: clock, RNG determinism, statistics,
// trace accounting, and the calibrated cost-model identities the engines
// rely on.
#include <gtest/gtest.h>

#include <set>

#include "src/cluster/sim_cluster.h"
#include "src/fault/fault_injector.h"
#include "src/sim/context.h"
#include "src/sim/rng.h"
#include "src/sim/seed_split.h"
#include "src/sim/stats.h"

namespace cki {
namespace {

TEST(ClockTest, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0u);
  clock.Advance(100);
  clock.Advance(23);
  EXPECT_EQ(clock.now(), 123u);
  ScopedTimer timer(clock);
  clock.Advance(77);
  EXPECT_EQ(timer.elapsed(), 77u);
  clock.Reset();
  EXPECT_EQ(clock.now(), 0u);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliRoughlyUnbiased) {
  Rng rng(99);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    heads += rng.NextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(heads, 3000, 200);
}

TEST(StatsTest, SummaryStatistics) {
  Stats stats;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    stats.Add(v);
  }
  EXPECT_EQ(stats.count(), 5u);
  EXPECT_DOUBLE_EQ(stats.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(stats.Min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 5.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(50), 3.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(100), 5.0);
  EXPECT_NEAR(stats.Stddev(), 1.5811, 1e-3);
}

TEST(StatsTest, PercentileInterpolates) {
  Stats stats;
  stats.Add(10);
  stats.Add(20);
  EXPECT_DOUBLE_EQ(stats.Percentile(50), 15.0);
}

TEST(TraceTest, CountsAndSnapshots) {
  TraceLog log;
  log.Record(PathEvent::kVmExit);
  log.Record(PathEvent::kVmExit);
  log.Record(PathEvent::kPksSwitch);
  EXPECT_EQ(log.Count(PathEvent::kVmExit), 2u);
  auto snap = log.Snapshot();
  log.Record(PathEvent::kVmExit);
  EXPECT_EQ(CountDelta(snap, log, PathEvent::kVmExit), 1u);
  EXPECT_EQ(log.TotalEvents(), 4u);
  log.Clear();
  EXPECT_EQ(log.TotalEvents(), 0u);
}

// --- the shared xorshift64* seed-split helper (src/sim/seed_split.h) ------

TEST(SeedSplitTest, PureAndNeverZero) {
  // Same inputs, same output — and no split ever yields the degenerate
  // all-zero xorshift state, not even from the adversarial seeds.
  for (uint64_t seed : {uint64_t{0}, uint64_t{1}, kSeedFoldConstant, ~uint64_t{0}}) {
    for (uint32_t idx : {0u, 1u, 7u, 1000u}) {
      uint64_t a = SplitSeed(seed, idx);
      uint64_t b = SplitSeed(seed, idx);
      EXPECT_EQ(a, b);
      EXPECT_NE(a, 0u);
    }
    EXPECT_NE(FoldSeed(seed), 0u);
  }
}

TEST(SeedSplitTest, DistinctIndicesDecorrelate) {
  std::set<uint64_t> seen;
  for (uint32_t idx = 0; idx < 256; ++idx) {
    seen.insert(SplitSeed(42, idx));
  }
  EXPECT_EQ(seen.size(), 256u);
}

TEST(SeedSplitTest, MatchesClusterShardSeeds) {
  // SimCluster derives shard seeds through this exact helper; the two
  // must never drift apart or every recorded cluster hash changes.
  for (uint32_t shard = 0; shard < 16; ++shard) {
    EXPECT_EQ(SimCluster::ShardSeed(0xDEADBEEF, shard), SplitSeed(0xDEADBEEF, shard));
  }
}

TEST(SeedSplitTest, XorShiftStreamDeterministicAndBounded) {
  XorShift64Star a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
    double u = a.NextUnit();
    b.NextUnit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(SeedSplitTest, SplitStreamsFeedDecorrelatedInjectors) {
  // Two injectors seeded from sibling splits of one root draw different
  // fault schedules (the per-shard chaos decorrelation the orchestrator
  // depends on), while re-derived ones are bit-identical.
  InjectorConfig c0;
  c0.seed = SplitSeed(7, 0);
  c0.packet_drop_rate = 0.5;
  InjectorConfig c1 = c0;
  c1.seed = SplitSeed(7, 1);
  FaultInjector a(c0), b(c1), a2(c0);
  int diverged = 0;
  for (int i = 0; i < 64; ++i) {
    bool da = a.InjectPacketDrop();
    diverged += da != b.InjectPacketDrop() ? 1 : 0;
    EXPECT_EQ(da, a2.InjectPacketDrop());
  }
  EXPECT_GT(diverged, 0);
  EXPECT_EQ(a.trace_hash(), a2.trace_hash());
  EXPECT_NE(a.trace_hash(), b.trace_hash());
}

TEST(ContextTest, ChargeAdvancesClockAndRecords) {
  SimContext ctx;
  ctx.Charge(50, PathEvent::kHypercall);
  ctx.ChargeWork(25);
  EXPECT_EQ(ctx.clock().now(), 75u);
  EXPECT_EQ(ctx.trace().Count(PathEvent::kHypercall), 1u);
}

// The calibration identities of DESIGN.md section 4: composed paths equal
// the paper's published numbers.
TEST(CostModelTest, CalibrationIdentities) {
  CostModel c = CostModel::Calibrated();
  // Fig 10b.
  EXPECT_EQ(c.syscall_entry + c.syscall_handler_min + c.sysret_exit, 90u);
  EXPECT_EQ(90 + 2 * c.pks_switch, 154u);                       // CKI-wo-OPT3 (~153)
  EXPECT_EQ(90 + 2 * c.Cr3SwitchMitigated(), 238u);             // CKI-wo-OPT2
  EXPECT_EQ(238 + 2 * c.mode_switch, 336u);                     // PVM
  // Fig 10a: native fault and the CKI KSM share.
  EXPECT_EQ(c.fault_delivery + c.pgfault_handler_core + c.iret_native, 1000u);
  EXPECT_EQ(c.pks_switch + c.ksm_dispatch + c.ksm_pte_validate + c.pte_write_native +
                c.ksm_iret_work + c.iret_native,
            77u);
  // Hypercalls (Table 2 / sec 7.1).
  EXPECT_EQ(c.vmexit_roundtrip_bm + c.hypercall_dispatch, 1088u);
  EXPECT_EQ(c.NestedExitRoundtrip() + c.hypercall_dispatch, 6746u);
  EXPECT_EQ(2 * c.mode_switch + 2 * c.Cr3SwitchMitigated() + c.pvm_exit_extra, 466u);
  EXPECT_EQ(2 * c.pks_switch + 2 * c.Cr3SwitchMitigated() + c.cki_switcher_save_restore +
                c.hypercall_dispatch,
            390u);
  // Two-dimensional walks cost 6x the references of a native walk.
  EXPECT_EQ(c.walk_refs_2d, 24);
  EXPECT_EQ(c.walk_refs_1d, 4);
}

}  // namespace
}  // namespace cki
