// Tests for the simulation substrate: clock, RNG determinism, statistics,
// trace accounting, and the calibrated cost-model identities the engines
// rely on.
#include <gtest/gtest.h>

#include "src/sim/context.h"
#include "src/sim/rng.h"
#include "src/sim/stats.h"

namespace cki {
namespace {

TEST(ClockTest, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0u);
  clock.Advance(100);
  clock.Advance(23);
  EXPECT_EQ(clock.now(), 123u);
  ScopedTimer timer(clock);
  clock.Advance(77);
  EXPECT_EQ(timer.elapsed(), 77u);
  clock.Reset();
  EXPECT_EQ(clock.now(), 0u);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliRoughlyUnbiased) {
  Rng rng(99);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    heads += rng.NextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(heads, 3000, 200);
}

TEST(StatsTest, SummaryStatistics) {
  Stats stats;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    stats.Add(v);
  }
  EXPECT_EQ(stats.count(), 5u);
  EXPECT_DOUBLE_EQ(stats.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(stats.Min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 5.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(50), 3.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(100), 5.0);
  EXPECT_NEAR(stats.Stddev(), 1.5811, 1e-3);
}

TEST(StatsTest, PercentileInterpolates) {
  Stats stats;
  stats.Add(10);
  stats.Add(20);
  EXPECT_DOUBLE_EQ(stats.Percentile(50), 15.0);
}

TEST(TraceTest, CountsAndSnapshots) {
  TraceLog log;
  log.Record(PathEvent::kVmExit);
  log.Record(PathEvent::kVmExit);
  log.Record(PathEvent::kPksSwitch);
  EXPECT_EQ(log.Count(PathEvent::kVmExit), 2u);
  auto snap = log.Snapshot();
  log.Record(PathEvent::kVmExit);
  EXPECT_EQ(CountDelta(snap, log, PathEvent::kVmExit), 1u);
  EXPECT_EQ(log.TotalEvents(), 4u);
  log.Clear();
  EXPECT_EQ(log.TotalEvents(), 0u);
}

TEST(ContextTest, ChargeAdvancesClockAndRecords) {
  SimContext ctx;
  ctx.Charge(50, PathEvent::kHypercall);
  ctx.ChargeWork(25);
  EXPECT_EQ(ctx.clock().now(), 75u);
  EXPECT_EQ(ctx.trace().Count(PathEvent::kHypercall), 1u);
}

// The calibration identities of DESIGN.md section 4: composed paths equal
// the paper's published numbers.
TEST(CostModelTest, CalibrationIdentities) {
  CostModel c = CostModel::Calibrated();
  // Fig 10b.
  EXPECT_EQ(c.syscall_entry + c.syscall_handler_min + c.sysret_exit, 90u);
  EXPECT_EQ(90 + 2 * c.pks_switch, 154u);                       // CKI-wo-OPT3 (~153)
  EXPECT_EQ(90 + 2 * c.Cr3SwitchMitigated(), 238u);             // CKI-wo-OPT2
  EXPECT_EQ(238 + 2 * c.mode_switch, 336u);                     // PVM
  // Fig 10a: native fault and the CKI KSM share.
  EXPECT_EQ(c.fault_delivery + c.pgfault_handler_core + c.iret_native, 1000u);
  EXPECT_EQ(c.pks_switch + c.ksm_dispatch + c.ksm_pte_validate + c.pte_write_native +
                c.ksm_iret_work + c.iret_native,
            77u);
  // Hypercalls (Table 2 / sec 7.1).
  EXPECT_EQ(c.vmexit_roundtrip_bm + c.hypercall_dispatch, 1088u);
  EXPECT_EQ(c.NestedExitRoundtrip() + c.hypercall_dispatch, 6746u);
  EXPECT_EQ(2 * c.mode_switch + 2 * c.Cr3SwitchMitigated() + c.pvm_exit_extra, 466u);
  EXPECT_EQ(2 * c.pks_switch + 2 * c.Cr3SwitchMitigated() + c.cki_switcher_save_restore +
                c.hypercall_dispatch,
            390u);
  // Two-dimensional walks cost 6x the references of a native walk.
  EXPECT_EQ(c.walk_refs_2d, 24);
  EXPECT_EQ(c.walk_refs_1d, 4);
}

}  // namespace
}  // namespace cki
