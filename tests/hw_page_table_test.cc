// Unit tests for physical memory, page-table construction and walking.
#include <gtest/gtest.h>

#include "src/hw/page_table.h"
#include "src/hw/phys_mem.h"
#include "src/hw/pte.h"

namespace cki {
namespace {

// Simple bump frame allocator for tests.
class TestAlloc {
 public:
  explicit TestAlloc(PhysMem& mem, uint64_t base = 0x10'0000) : mem_(mem), next_(base) {}

  uint64_t Alloc() {
    uint64_t pa = next_;
    next_ += kPageSize;
    mem_.InstallFrame(pa);
    return pa;
  }

  PtpAllocFn AsPtpAlloc() {
    return [this](int /*level*/) { return Alloc(); };
  }

 private:
  PhysMem& mem_;
  uint64_t next_;
};

PteStoreFn DirectStore(PhysMem& mem) {
  return [&mem](uint64_t pte_pa, uint64_t value, int /*level*/, uint64_t /*va*/) {
    mem.WriteU64(pte_pa, value);
    return true;
  };
}

TEST(PhysMemTest, InstallAndReadWrite) {
  PhysMem mem;
  mem.InstallFrame(0x5000);
  EXPECT_TRUE(mem.HasFrame(0x5000));
  EXPECT_TRUE(mem.HasFrame(0x5FF8));
  EXPECT_FALSE(mem.HasFrame(0x6000));
  mem.WriteU64(0x5010, 0xDEADBEEF);
  EXPECT_EQ(mem.ReadU64(0x5010), 0xDEADBEEFu);
  mem.ZeroFrame(0x5000);
  EXPECT_EQ(mem.ReadU64(0x5010), 0u);
}

TEST(PageTableTest, MapAndWalk4K) {
  PhysMem mem;
  TestAlloc alloc(mem);
  PageTableEditor editor(mem, alloc.AsPtpAlloc(), DirectStore(mem));
  uint64_t root = alloc.Alloc();

  uint64_t va = 0x7f00'1234'5000;
  uint64_t pa = 0x9'F000;
  mem.InstallFrame(pa);
  ASSERT_TRUE(editor.MapPage(root, va, pa, kPteP | kPteW | kPteU, /*pkey=*/0, PageSize::k4K));

  WalkResult walk = WalkPageTable(mem, root, va + 0x123);
  ASSERT_TRUE(walk.fault.ok());
  EXPECT_EQ(walk.pa, pa + 0x123);
  EXPECT_EQ(walk.leaf_level, 1);
  EXPECT_EQ(walk.mem_refs, kPtLevels);
}

TEST(PageTableTest, WalkReportsNotPresent) {
  PhysMem mem;
  TestAlloc alloc(mem);
  uint64_t root = alloc.Alloc();
  WalkResult walk = WalkPageTable(mem, root, 0x1000);
  EXPECT_EQ(walk.fault.type, FaultType::kPageNotPresent);
}

TEST(PageTableTest, MapAndWalk2M) {
  PhysMem mem;
  TestAlloc alloc(mem);
  PageTableEditor editor(mem, alloc.AsPtpAlloc(), DirectStore(mem));
  uint64_t root = alloc.Alloc();

  uint64_t va = 0x4000'0000;         // 2M aligned
  uint64_t pa = 0x2000'0000;
  ASSERT_TRUE(editor.MapPage(root, va, pa, kPteP | kPteW, /*pkey=*/0, PageSize::k2M));

  WalkResult walk = WalkPageTable(mem, root, va + 0x12'3456);
  ASSERT_TRUE(walk.fault.ok());
  EXPECT_EQ(walk.pa, pa + 0x12'3456);
  EXPECT_EQ(walk.leaf_level, 2);
  EXPECT_EQ(walk.mem_refs, 3);  // PML4, PDPT, PD leaf
}

TEST(PageTableTest, UnmapClearsLeaf) {
  PhysMem mem;
  TestAlloc alloc(mem);
  PageTableEditor editor(mem, alloc.AsPtpAlloc(), DirectStore(mem));
  uint64_t root = alloc.Alloc();
  uint64_t va = 0x1'0000'0000;
  ASSERT_TRUE(editor.MapPage(root, va, 0x8000, kPteP | kPteW, 0, PageSize::k4K));
  ASSERT_TRUE(editor.UnmapPage(root, va));
  EXPECT_EQ(WalkPageTable(mem, root, va).fault.type, FaultType::kPageNotPresent);
  EXPECT_FALSE(editor.UnmapPage(root, va));  // already gone
}

TEST(PageTableTest, ProtectRewritesFlagsKeepsAddress) {
  PhysMem mem;
  TestAlloc alloc(mem);
  PageTableEditor editor(mem, alloc.AsPtpAlloc(), DirectStore(mem));
  uint64_t root = alloc.Alloc();
  uint64_t va = 0x2000'0000;
  ASSERT_TRUE(editor.MapPage(root, va, 0xA000, kPteP | kPteW, 0, PageSize::k4K));
  ASSERT_TRUE(editor.ProtectPage(root, va, kPteP, /*pkey=*/2));

  WalkResult walk = WalkPageTable(mem, root, va);
  ASSERT_TRUE(walk.fault.ok());
  EXPECT_EQ(PteAddr(walk.leaf_pte), 0xA000u);
  EXPECT_FALSE(PteWritable(walk.leaf_pte));
  EXPECT_EQ(PtePkey(walk.leaf_pte), 2u);
}

TEST(PageTableTest, RejectedStoreFailsMapping) {
  PhysMem mem;
  TestAlloc alloc(mem);
  // A store hook that refuses leaf-level stores (monitor-style rejection).
  PteStoreFn refusing = [&mem](uint64_t pte_pa, uint64_t value, int level, uint64_t /*va*/) {
    if (level == 1) {
      return false;
    }
    mem.WriteU64(pte_pa, value);
    return true;
  };
  PageTableEditor editor(mem, alloc.AsPtpAlloc(), refusing);
  uint64_t root = alloc.Alloc();
  EXPECT_FALSE(editor.MapPage(root, 0x3000'0000, 0xB000, kPteP, 0, PageSize::k4K));
}

TEST(PageTableTest, FindLeafSlotRequiresIntermediateLevels) {
  PhysMem mem;
  TestAlloc alloc(mem);
  PageTableEditor editor(mem, alloc.AsPtpAlloc(), DirectStore(mem));
  uint64_t root = alloc.Alloc();
  EXPECT_FALSE(editor.FindLeafSlot(root, 0x5000'0000).has_value());
  ASSERT_TRUE(editor.MapPage(root, 0x5000'0000, 0xC000, kPteP, 0, PageSize::k4K));
  EXPECT_TRUE(editor.FindLeafSlot(root, 0x5000'0000).has_value());
  // A neighbouring page in the same PT has a slot too (leaf may be empty).
  EXPECT_TRUE(editor.FindLeafSlot(root, 0x5000'1000).has_value());
}

}  // namespace
}  // namespace cki
