// Functional tests of the model guest kernel, parameterized over all four
// container runtimes: the same syscall semantics must hold regardless of
// the isolation mechanism underneath (the paper's compatibility claim).
#include <gtest/gtest.h>

#include "src/guest/process.h"
#include "src/runtime/runtime.h"

namespace cki {
namespace {

struct EngineParam {
  RuntimeKind kind;
  Deployment deployment;
};

class KernelSemanticsTest : public ::testing::TestWithParam<EngineParam> {
 protected:
  KernelSemanticsTest() : bed_(GetParam().kind, GetParam().deployment) {}

  ContainerEngine& engine() { return bed_.engine(); }
  GuestKernel& kernel() { return bed_.engine().kernel(); }

  SyscallResult Sys1(Sys no, uint64_t a0 = 0, uint64_t a1 = 0, uint64_t a2 = 0) {
    return engine().UserSyscall(SyscallRequest{.no = no, .arg0 = a0, .arg1 = a1, .arg2 = a2});
  }

  Testbed bed_;
};

TEST_P(KernelSemanticsTest, GetpidReturnsCurrentPid) {
  EXPECT_EQ(Sys1(Sys::kGetpid).value, kernel().current_pid());
}

TEST_P(KernelSemanticsTest, MmapTouchMunmap) {
  uint64_t base = engine().MmapAnon(4 * kPageSize, false);
  ASSERT_NE(base, 0u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(engine().UserTouch(base + static_cast<uint64_t>(i) * kPageSize, true),
              TouchResult::kOk);
  }
  EXPECT_TRUE(Sys1(Sys::kMunmap, base, 4 * kPageSize).ok());
  // The unmapped range faults as SIGSEGV now.
  EXPECT_EQ(engine().UserTouch(base, false), TouchResult::kSegv);
}

TEST_P(KernelSemanticsTest, AccessOutsideAnyVmaIsSegv) {
  EXPECT_EQ(engine().UserTouch(0x13'3700'0000, true), TouchResult::kSegv);
}

TEST_P(KernelSemanticsTest, MprotectReadOnlyBlocksWrites) {
  uint64_t base = engine().MmapAnon(kPageSize, true);
  ASSERT_EQ(engine().UserTouch(base, true), TouchResult::kOk);
  ASSERT_TRUE(Sys1(Sys::kMprotect, base, kPageSize, kProtRead).ok());
  EXPECT_EQ(engine().UserTouch(base, true), TouchResult::kSegv);
  EXPECT_EQ(engine().UserTouch(base, false), TouchResult::kOk);
  ASSERT_TRUE(Sys1(Sys::kMprotect, base, kPageSize, kProtRead | kProtWrite).ok());
  EXPECT_EQ(engine().UserTouch(base, true), TouchResult::kOk);
}

TEST_P(KernelSemanticsTest, BrkGrowsAndShrinksHeap) {
  uint64_t cur = static_cast<uint64_t>(Sys1(Sys::kBrk, 0).value);
  uint64_t grown = cur + 8 * kPageSize;
  ASSERT_EQ(static_cast<uint64_t>(Sys1(Sys::kBrk, grown).value), grown);
  EXPECT_EQ(engine().UserTouch(cur, true), TouchResult::kOk);
  ASSERT_EQ(static_cast<uint64_t>(Sys1(Sys::kBrk, cur).value), cur);
  EXPECT_EQ(engine().UserTouch(cur, true), TouchResult::kSegv);
}

TEST_P(KernelSemanticsTest, FileReadWriteStat) {
  SyscallResult fd = Sys1(Sys::kOpen, 42);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(Sys1(Sys::kWrite, static_cast<uint64_t>(fd.value), 5000).value, 5000);
  EXPECT_EQ(Sys1(Sys::kFstat, static_cast<uint64_t>(fd.value)).value, 5000);
  EXPECT_EQ(Sys1(Sys::kPread, static_cast<uint64_t>(fd.value), 1000, 0).value, 1000);
  // Reading past EOF returns the remaining bytes.
  EXPECT_EQ(Sys1(Sys::kPread, static_cast<uint64_t>(fd.value), 9999, 4000).value, 1000);
  EXPECT_TRUE(Sys1(Sys::kClose, static_cast<uint64_t>(fd.value)).ok());
  EXPECT_EQ(Sys1(Sys::kRead, static_cast<uint64_t>(fd.value), 1).value, kEBADF);
}

TEST_P(KernelSemanticsTest, PipeCarriesBytes) {
  SyscallResult p = Sys1(Sys::kPipe);
  ASSERT_TRUE(p.ok());
  uint64_t rfd = static_cast<uint64_t>(p.value) & 0xFFFF;
  uint64_t wfd = static_cast<uint64_t>(p.value) >> 16;
  EXPECT_EQ(Sys1(Sys::kRead, rfd, 10).value, kEAGAIN);  // empty
  EXPECT_EQ(Sys1(Sys::kWrite, wfd, 10).value, 10);
  EXPECT_EQ(Sys1(Sys::kRead, rfd, 4).value, 4);
  EXPECT_EQ(Sys1(Sys::kRead, rfd, 100).value, 6);
}

TEST_P(KernelSemanticsTest, ForkCreatesCowChild) {
  uint64_t base = engine().MmapAnon(2 * kPageSize, true);
  ASSERT_EQ(engine().UserTouch(base, true), TouchResult::kOk);
  int parent = kernel().current_pid();
  SyscallResult r = Sys1(Sys::kFork);
  ASSERT_TRUE(r.ok());
  int child = static_cast<int>(r.value);
  ASSERT_NE(child, parent);

  // Parent write triggers copy-on-write but succeeds.
  EXPECT_EQ(engine().UserTouch(base, true), TouchResult::kOk);
  // Child sees the same mapping, also writable through CoW.
  kernel().SwitchTo(child);
  EXPECT_EQ(engine().UserTouch(base, true), TouchResult::kOk);
  EXPECT_EQ(Sys1(Sys::kGetpid).value, child);
  Sys1(Sys::kExit, 7);
  EXPECT_EQ(kernel().current_pid(), parent);
  EXPECT_EQ(Sys1(Sys::kWaitpid, 0).value, child);
}

TEST_P(KernelSemanticsTest, ExecveReplacesAddressSpace) {
  uint64_t base = engine().MmapAnon(kPageSize, true);
  ASSERT_EQ(engine().UserTouch(base, true), TouchResult::kOk);
  ASSERT_TRUE(Sys1(Sys::kExecve).ok());
  // Old mapping is gone; text is freshly mapped.
  EXPECT_EQ(engine().UserTouch(base, false), TouchResult::kSegv);
  EXPECT_EQ(engine().UserTouch(kUserTextBase, false), TouchResult::kOk);
}

TEST_P(KernelSemanticsTest, SchedYieldRoundRobins) {
  int parent = kernel().current_pid();
  SyscallResult r = Sys1(Sys::kFork);
  ASSERT_TRUE(r.ok());
  int child = static_cast<int>(r.value);
  ASSERT_TRUE(Sys1(Sys::kSchedYield).ok());
  EXPECT_EQ(kernel().current_pid(), child);
  ASSERT_TRUE(Sys1(Sys::kSchedYield).ok());
  EXPECT_EQ(kernel().current_pid(), parent);
}

TEST_P(KernelSemanticsTest, WaitpidWithNoChildrenFails) {
  EXPECT_EQ(Sys1(Sys::kWaitpid, 0).value, kECHILD);
}

TEST_P(KernelSemanticsTest, StackIsUsable) {
  EXPECT_EQ(engine().UserTouch(kUserStackTop - kPageSize, true), TouchResult::kOk);
}

TEST_P(KernelSemanticsTest, SocketpairRoundTrip) {
  SyscallResult sp = Sys1(Sys::kSocketpair);
  ASSERT_TRUE(sp.ok());
  uint64_t s0 = static_cast<uint64_t>(sp.value) & 0xFFFF;
  uint64_t s1 = static_cast<uint64_t>(sp.value) >> 16;
  EXPECT_EQ(Sys1(Sys::kSendto, s0, 64).value, 64);
  EXPECT_EQ(Sys1(Sys::kRecvfrom, s1, 64).value, 64);
  EXPECT_EQ(Sys1(Sys::kRecvfrom, s1, 64).value, kEAGAIN);
}

INSTANTIATE_TEST_SUITE_P(
    AllRuntimes, KernelSemanticsTest,
    ::testing::Values(EngineParam{RuntimeKind::kRunc, Deployment::kBareMetal},
                      EngineParam{RuntimeKind::kHvm, Deployment::kBareMetal},
                      EngineParam{RuntimeKind::kHvm, Deployment::kNested},
                      EngineParam{RuntimeKind::kPvm, Deployment::kBareMetal},
                      EngineParam{RuntimeKind::kPvm, Deployment::kNested},
                      EngineParam{RuntimeKind::kCki, Deployment::kBareMetal},
                      EngineParam{RuntimeKind::kCki, Deployment::kNested},
                      EngineParam{RuntimeKind::kCkiNoOpt2, Deployment::kBareMetal},
                      EngineParam{RuntimeKind::kCkiNoOpt3, Deployment::kBareMetal}),
    [](const ::testing::TestParamInfo<EngineParam>& param_info) {
      std::string name(RuntimeKindName(param_info.param.kind));
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name + (param_info.param.deployment == Deployment::kNested ? "_NST" : "_BM");
    });

}  // namespace
}  // namespace cki
