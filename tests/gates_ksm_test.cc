// Unit tests for the PKS switch gates and KSM operations not covered by
// the attack-oriented security suite: legitimate gate sequences, cost
// composition, KSM call accounting, and UndeclarePtp edge cases.
#include <gtest/gtest.h>

#include "src/cki/cki_engine.h"
#include "src/hw/pks.h"
#include "src/runtime/runtime.h"

namespace cki {
namespace {

class GatesKsmTest : public ::testing::Test {
 protected:
  GatesKsmTest() : bed_(RuntimeKind::kCki, Deployment::kBareMetal) {}

  CkiEngine& engine() { return static_cast<CkiEngine&>(bed_.engine()); }
  Cpu& cpu() { return bed_.machine().cpu(); }

  Testbed bed_;
};

TEST_F(GatesKsmTest, EnterExitRoundTripRestoresGuestKey) {
  cpu().set_cpl(Cpl::kKernel);
  cpu().SetPkrsDirect(kPkrsGuest);
  ASSERT_TRUE(engine().gates().EnterKsm());
  EXPECT_EQ(cpu().pkrs(), kPkrsMonitor);
  ASSERT_TRUE(engine().gates().ExitKsm());
  EXPECT_EQ(cpu().pkrs(), kPkrsGuest);
}

TEST_F(GatesKsmTest, GatePairCostsTwoPksSwitchesPlusDispatch) {
  cpu().set_cpl(Cpl::kKernel);
  cpu().SetPkrsDirect(kPkrsGuest);
  const CostModel& c = bed_.ctx().cost();
  SimNanos t0 = bed_.ctx().clock().now();
  engine().gates().EnterKsm();
  engine().gates().ExitKsm();
  EXPECT_EQ(bed_.ctx().clock().now() - t0, 2 * c.pks_switch + c.ksm_dispatch);
}

TEST_F(GatesKsmTest, HypercallRoundtripIs390ns) {
  cpu().set_cpl(Cpl::kKernel);
  cpu().SetPkrsDirect(kPkrsGuest);
  SimNanos t0 = bed_.ctx().clock().now();
  engine().gates().HypercallRoundtrip();
  EXPECT_EQ(bed_.ctx().clock().now() - t0, 390u);
  EXPECT_EQ(cpu().pkrs(), kPkrsGuest) << "guest key restored after the switcher";
}

TEST_F(GatesKsmTest, HardwareInterruptRestoresPkrsViaIret) {
  cpu().set_cpl(Cpl::kKernel);
  cpu().SetPkrsDirect(kPkrsGuest);
  ASSERT_TRUE(engine().gates().HardwareInterruptToHost(kVecTimer));
  EXPECT_EQ(cpu().pkrs(), kPkrsGuest);
  EXPECT_TRUE(cpu().interrupts_enabled());
}

TEST_F(GatesKsmTest, KsmCallCountingTracksOperations) {
  uint64_t calls_before = engine().ksm().ksm_calls();
  uint64_t base = engine().MmapAnon(2 * kPageSize, false);
  engine().UserTouch(base, true);
  EXPECT_GT(engine().ksm().ksm_calls(), calls_before)
      << "the fault's PTE update and iret are KSM calls";
}

TEST_F(GatesKsmTest, UndeclareUnknownPageFails) {
  uint64_t data = engine().AllocDataPage();
  EXPECT_EQ(engine().ksm().UndeclarePtp(data), PtpVerdict::kNotDeclared);
}

TEST_F(GatesKsmTest, RedeclareAfterUndeclareWorks) {
  uint64_t page = engine().AllocDataPage();
  ASSERT_EQ(engine().ksm().DeclarePtp(page, 1), PtpVerdict::kOk);
  ASSERT_EQ(engine().ksm().UndeclarePtp(page), PtpVerdict::kOk);
  EXPECT_EQ(engine().ksm().DeclarePtp(page, 2), PtpVerdict::kOk)
      << "a clean page can be redeclared at a different level";
  EXPECT_EQ(engine().ksm().monitor().PtpLevel(page), 2);
}

TEST_F(GatesKsmTest, DoubleDeclareFails) {
  uint64_t page = engine().AllocDataPage();
  ASSERT_EQ(engine().ksm().DeclarePtp(page, 1), PtpVerdict::kOk);
  EXPECT_EQ(engine().ksm().DeclarePtp(page, 1), PtpVerdict::kDataPageInUse);
}

TEST_F(GatesKsmTest, TopLevelCopyLifecycle) {
  uint64_t page = engine().AllocDataPage();
  ASSERT_EQ(engine().ksm().DeclarePtp(page, kPtLevels), PtpVerdict::kOk);
  EXPECT_NE(engine().ksm().TopLevelCopy(page, 0), 0u);
  ASSERT_EQ(engine().ksm().UndeclarePtp(page), PtpVerdict::kOk);
  EXPECT_EQ(engine().ksm().TopLevelCopy(page, 0), 0u) << "copies freed on undeclare";
}

TEST_F(GatesKsmTest, SecureStackVisibilityFollowsPkrs) {
  cpu().set_cpl(Cpl::kKernel);
  cpu().SetPkrsDirect(kPkrsGuest);
  EXPECT_FALSE(engine().gates().SecureStackAccessible());
  cpu().SetPkrsDirect(kPkrsMonitor);
  EXPECT_TRUE(engine().gates().SecureStackAccessible());
  cpu().SetPkrsDirect(kPkrsGuest);
}

}  // namespace
}  // namespace cki
