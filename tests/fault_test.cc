// Fault-domain and fault-injection tests: blast-radius containment (one
// container's death leaves neighbors untouched), deterministic chaos
// replay, and the counted-not-fatal failure paths.
#include <gtest/gtest.h>

#include <utility>

#include "src/cki/cki_engine.h"
#include "src/fault/fault_domain.h"
#include "src/fault/fault_injector.h"
#include "src/net/virt_nic.h"
#include "src/net/vswitch.h"
#include "src/runtime/runtime.h"
#include "src/sim/rng.h"

namespace cki {
namespace {

// --- FaultBus unit ----------------------------------------------------------

TEST(FaultBusTest, NoteRecordsWithoutKilling) {
  SimContext ctx{CostModel::Calibrated()};
  FaultBus bus(ctx);
  bool killed = false;
  bus.RegisterDomain(1, "c1", [&] { killed = true; });
  bus.Note(FaultReport{FaultKind::kNicOverload, 1, 42});
  EXPECT_FALSE(killed);
  EXPECT_TRUE(bus.alive(1));
  EXPECT_EQ(bus.faults_reported(), 1u);
  EXPECT_EQ(bus.CountForKind(FaultKind::kNicOverload), 1u);
  EXPECT_EQ(bus.containers_killed(), 0u);
}

TEST(FaultBusTest, KillRunsHooksThenHandlerOnceAndIsIdempotent) {
  SimContext ctx{CostModel::Calibrated()};
  FaultBus bus(ctx);
  std::vector<std::string> order;
  bus.RegisterDomain(1, "c1", [&] { order.push_back("handler"); });
  bus.AddKillHook(1, [&] { order.push_back("hook"); });
  bus.Kill(FaultReport{FaultKind::kProtectionViolation, 1, 0});
  EXPECT_FALSE(bus.alive(1));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "hook");  // devices detach before the engine tears down
  EXPECT_EQ(order[1], "handler");
  // A second kill of a dead container is already contained: recorded, no
  // second teardown, no host-fatal escalation.
  bus.Kill(FaultReport{FaultKind::kPksTrap, 1, 0});
  EXPECT_EQ(order.size(), 2u);
  EXPECT_EQ(bus.containers_killed(), 1u);
}

TEST(FaultBusTest, RaiseThrowsContainerKilledWithReport) {
  SimContext ctx{CostModel::Calibrated()};
  FaultBus bus(ctx);
  bus.RegisterDomain(7, "c7", [] {});
  try {
    bus.Raise(FaultReport{FaultKind::kPtpVerdictRejected, 7, 0xABC});
    FAIL() << "Raise must not return";
  } catch (const ContainerKilled& killed) {
    EXPECT_EQ(killed.owner(), 7u);
    EXPECT_EQ(killed.report().kind, FaultKind::kPtpVerdictRejected);
    EXPECT_EQ(killed.report().detail, 0xABCu);
  }
  EXPECT_FALSE(bus.alive(7));
}

TEST(FaultBusTest, UnregisteredOwnerIsHostFatal) {
  SimContext ctx{CostModel::Calibrated()};
  FaultBus bus(ctx);
  EXPECT_THROW(bus.Kill(FaultReport{FaultKind::kFrameExhausted, 99, 0}),
               FatalHostError);
  EXPECT_THROW(bus.Kill(FaultReport{FaultKind::kFrameExhausted, kHostOwner, 0}),
               FatalHostError);
}

TEST(FaultBusTest, RemovedHookDoesNotRun) {
  SimContext ctx{CostModel::Calibrated()};
  FaultBus bus(ctx);
  bool hook_ran = false;
  bus.RegisterDomain(1, "c1", [] {});
  uint64_t token = bus.AddKillHook(1, [&] { hook_ran = true; });
  bus.RemoveKillHook(token);
  bus.Kill(FaultReport{FaultKind::kProtectionViolation, 1, 0});
  EXPECT_FALSE(hook_ran);
}

// --- FaultInjector unit -----------------------------------------------------

TEST(FaultInjectorTest, SameSeedSameDecisionStreamAndHash) {
  InjectorConfig config;
  config.seed = 1234;
  config.pks_violation_rate = 0.3;
  config.virtio_corrupt_rate = 0.1;
  FaultInjector a(config);
  FaultInjector b(config);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.InjectPksViolation(), b.InjectPksViolation());
    EXPECT_EQ(a.InjectVirtioCorruption(), b.InjectVirtioCorruption());
  }
  EXPECT_GT(a.injected(), 0u);
  EXPECT_EQ(a.draws(), 1000u);
  EXPECT_EQ(a.trace_hash(), b.trace_hash());

  config.seed = 1235;
  FaultInjector c(config);
  for (int i = 0; i < 500; ++i) {
    c.InjectPksViolation();
    c.InjectVirtioCorruption();
  }
  EXPECT_NE(a.trace_hash(), c.trace_hash()) << "different seed, same trace";
}

TEST(FaultInjectorTest, DisarmedSiteConsumesNoDraw) {
  InjectorConfig config;
  config.seed = 5;
  config.pks_violation_rate = 0.5;  // armed
  FaultInjector with_noise(config);
  FaultInjector without_noise(config);
  // Interleave disarmed queries on one stream only: the armed site's
  // decisions must be unaffected (disarmed sites draw nothing).
  for (int i = 0; i < 200; ++i) {
    with_noise.InjectVirtioCorruption();  // rate 0: disarmed
    with_noise.InjectPacketDrop();        // rate 0: disarmed
    EXPECT_EQ(with_noise.InjectPksViolation(), without_noise.InjectPksViolation());
  }
  EXPECT_EQ(with_noise.draws(), without_noise.draws());
}

// --- FrameAllocator reclaim sweep ------------------------------------------

TEST(ReclaimTest, OwnerSweepReclaimsFramesAndSegmentsOfThatOwnerOnly) {
  PhysMem mem;
  FrameAllocator alloc(mem, 0x10'0000, 64);
  std::vector<uint64_t> mine;
  for (int i = 0; i < 5; ++i) {
    mine.push_back(alloc.AllocFrame(1));
  }
  uint64_t theirs = alloc.AllocFrame(2);
  PhysSegment seg = alloc.AllocSegment(8, 1);
  ASSERT_EQ(seg.pages, 8u);
  EXPECT_EQ(alloc.OwnedFrames(1), 13u);
  EXPECT_EQ(alloc.OwnedFrames(2), 1u);

  EXPECT_EQ(alloc.ReclaimOwner(1), 13u);
  EXPECT_EQ(alloc.OwnedFrames(1), 0u);
  EXPECT_EQ(alloc.OwnedFrames(2), 1u);
  EXPECT_EQ(alloc.OwnerOf(theirs), 2u);
  // The reclaimed frames are reusable.
  for (int i = 0; i < 13; ++i) {
    EXPECT_NE(alloc.AllocFrame(3), 0u);
  }
  // A second sweep of the same owner is a no-op.
  EXPECT_EQ(alloc.ReclaimOwner(1), 0u);
}

// --- blast radius: kill one of two CKI containers ---------------------------

size_t TlbEntriesForEngine(Machine& machine, const ContainerEngine& engine,
                           uint16_t pcid_span) {
  size_t n = 0;
  for (uint16_t i = 0; i < pcid_span; ++i) {
    n += machine.cpu().tlb().ValidCountForPcid(
        static_cast<uint16_t>(engine.pcid_base() + i));
  }
  return n;
}

TEST(BlastRadiusTest, KillReclaimsVictimAndSparesNeighbor) {
  Machine machine(MachineConfigFor(RuntimeKind::kCki, Deployment::kBareMetal));
  std::unique_ptr<ContainerEngine> victim = MakeEngine(machine, RuntimeKind::kCki);
  victim->Boot();
  // Touch while the victim's address space is loaded so its PCIDs hold
  // live TLB entries.
  uint64_t victim_heap = victim->MmapAnon(4 * kPageSize, /*populate=*/false);
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(victim->UserTouch(victim_heap + static_cast<uint64_t>(i) * kPageSize, true),
              TouchResult::kOk);
  }
  std::unique_ptr<ContainerEngine> neighbor = MakeEngine(machine, RuntimeKind::kCki);
  neighbor->Boot();  // loads the neighbor's CR3
  uint64_t neighbor_heap = neighbor->MmapAnon(4 * kPageSize, /*populate=*/false);
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(neighbor->UserTouch(neighbor_heap + static_cast<uint64_t>(i) * kPageSize, true),
              TouchResult::kOk);
  }

  uint64_t victim_frames = machine.frames().OwnedFrames(victim->id());
  uint64_t neighbor_frames = machine.frames().OwnedFrames(neighbor->id());
  ASSERT_GT(victim_frames, 0u);
  ASSERT_GT(neighbor_frames, 0u);
  ASSERT_GT(TlbEntriesForEngine(machine, *victim, 256), 0u);
  size_t neighbor_tlb = TlbEntriesForEngine(machine, *neighbor, 256);
  ASSERT_GT(neighbor_tlb, 0u);

  machine.faults().Kill(
      FaultReport{FaultKind::kProtectionViolation, victim->id(), 0xBAD});

  // Victim: dead, zero frames, zero TLB contexts, error returns.
  EXPECT_FALSE(victim->alive());
  EXPECT_EQ(machine.frames().OwnedFrames(victim->id()), 0u);
  EXPECT_EQ(TlbEntriesForEngine(machine, *victim, 256), 0u);
  EXPECT_EQ(victim->UserSyscall(SyscallRequest{.no = Sys::kGetpid}).value, kEKILLED);
  EXPECT_EQ(victim->UserTouch(victim_heap, true), TouchResult::kKilled);
  EXPECT_EQ(victim->GuestHypercall(HypercallOp::kNop), 0u);

  // Neighbor: alive, frames intact, TLB contexts intact, fully functional.
  EXPECT_TRUE(neighbor->alive());
  EXPECT_EQ(machine.frames().OwnedFrames(neighbor->id()), neighbor_frames);
  EXPECT_EQ(TlbEntriesForEngine(machine, *neighbor, 256), neighbor_tlb);
  EXPECT_TRUE(neighbor->UserSyscall(SyscallRequest{.no = Sys::kGetpid}).ok());
  EXPECT_NE(neighbor->MmapAnon(2 * kPageSize, /*populate=*/true), 0u);

  EXPECT_EQ(machine.faults().containers_killed(), 1u);
  EXPECT_EQ(machine.faults().frames_reclaimed(), victim_frames);
}

// --- segment exhaustion: ENOMEM, not a kill ---------------------------------

TEST(BlastRadiusTest, SegmentExhaustionPropagatesEnomemAndContainerSurvives) {
  Machine machine(MachineConfigFor(RuntimeKind::kCki, Deployment::kBareMetal));
  CkiEngine engine(machine, CkiAblation::kNone, /*segment_pages=*/64);
  engine.Boot();
  SimContext& ctx = machine.ctx();
  bool saw_enomem = false;
  for (int i = 0; i < 64; ++i) {
    SyscallResult r = engine.UserSyscall(SyscallRequest{
        .no = Sys::kMmap,
        .arg0 = 8 * kPageSize,
        .arg1 = kProtRead | kProtWrite,
        .arg2 = kMapPopulate});
    if (r.value == kENOMEM) {
      saw_enomem = true;
      break;
    }
    ASSERT_TRUE(r.ok()) << "mmap failed with " << r.value << " (want ENOMEM)";
  }
  EXPECT_TRUE(saw_enomem) << "a 64-page segment must exhaust within 64 mmaps";
  EXPECT_TRUE(engine.alive()) << "guest OOM is the guest's problem, not a kill";
  EXPECT_TRUE(engine.UserSyscall(SyscallRequest{.no = Sys::kGetpid}).ok());
  EXPECT_GT(ctx.trace().Count(PathEvent::kGuestOom), 0u);
  EXPECT_GT(machine.faults().CountForKind(FaultKind::kSegmentExhausted), 0u);
}

// --- NIC detach on kill -----------------------------------------------------

TEST(BlastRadiusTest, VirtioCorruptionKillsReceiverOnlyAndDetachesItsPort) {
  Machine machine(MachineConfigFor(RuntimeKind::kRunc, Deployment::kBareMetal));
  std::unique_ptr<ContainerEngine> sender = MakeEngine(machine, RuntimeKind::kRunc);
  sender->Boot();
  std::unique_ptr<ContainerEngine> receiver = MakeEngine(machine, RuntimeKind::kRunc);
  receiver->Boot();
  VSwitch vswitch(machine.ctx());
  VirtNic tx(*sender, vswitch, "tx");
  VirtNic rx(*receiver, vswitch, "rx");
  int flow = vswitch.AllocFlow();
  tx.OpenRawFlow(flow, rx.port());
  rx.OpenRawFlow(flow, tx.port());

  ASSERT_EQ(tx.Transmit(flow, 100), 100u);
  tx.Flush();
  ASSERT_EQ(rx.stats().rx_packets, 1u);

  InjectorConfig config;
  config.seed = 3;
  config.virtio_corrupt_rate = 1.0;  // next delivered frame is corrupt
  FaultInjector injector(config);
  rx.set_injector(&injector);
  tx.Transmit(flow, 100);
  tx.Flush();

  EXPECT_TRUE(sender->alive()) << "the sender of a corrupt frame is innocent";
  EXPECT_FALSE(receiver->alive());
  EXPECT_TRUE(rx.detached());
  EXPECT_EQ(machine.faults().CountForKind(FaultKind::kVirtioRingCorruption), 1u);
  EXPECT_EQ(machine.frames().OwnedFrames(receiver->id()), 0u);

  // Frames toward the dead port now black-hole; the sender keeps working.
  uint64_t drops_before = vswitch.port_stats(rx.port()).drops;
  tx.Transmit(flow, 100);
  tx.Flush();
  EXPECT_GT(vswitch.port_stats(rx.port()).drops, drops_before);
}

// --- integration determinism: same seed => identical fault traces -----------

std::pair<uint64_t, uint64_t> ChaosRun(uint64_t seed) {
  Machine machine(MachineConfigFor(RuntimeKind::kCki, Deployment::kBareMetal));
  std::unique_ptr<ContainerEngine> engine = MakeEngine(machine, RuntimeKind::kCki);
  engine->Boot();
  InjectorConfig config;
  config.seed = seed;
  config.pks_violation_rate = 0.01;
  config.pte_flip_rate = 0.005;
  config.segment_oom_rate = 0.01;
  FaultInjector injector(config);
  engine->set_injector(&injector);
  uint64_t arena = engine->MmapAnon(16 * kPageSize, /*populate=*/false);
  Rng rng(7);  // op mix is seed-independent; only fault decisions vary
  for (int i = 0; i < 800; ++i) {
    switch (rng.NextBelow(3)) {
      case 0:
        engine->UserSyscall(SyscallRequest{.no = Sys::kGetpid});
        break;
      case 1:
        engine->UserTouch(arena + rng.NextBelow(16) * kPageSize, true);
        break;
      case 2:
        engine->MmapAnon(2 * kPageSize, /*populate=*/true);
        break;
    }
    if (!engine->alive()) {
      break;
    }
  }
  return {injector.trace_hash(), machine.faults().trace_hash()};
}

TEST(BlastRadiusTest, SameSeedProducesIdenticalFaultTraceHashes) {
  auto run1 = ChaosRun(21);
  auto run2 = ChaosRun(21);
  EXPECT_EQ(run1.first, run2.first) << "injector trace diverged";
  EXPECT_EQ(run1.second, run2.second) << "fault-bus trace diverged";
  auto run3 = ChaosRun(22);
  EXPECT_NE(run1.first, run3.first) << "different seed, identical injections";
}

// --- host-fatal construction ------------------------------------------------

TEST(BlastRadiusTest, CkiEngineWithoutExtensionsIsHostFatalNotAbort) {
  Machine machine;  // no CKI hardware extensions
  EXPECT_THROW(CkiEngine{machine}, FatalHostError);
}

}  // namespace
}  // namespace cki
