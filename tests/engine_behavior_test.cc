// Mechanism-level tests of the HVM and PVM engines: lazy EPT backing,
// shadow-table consistency, batching, cold-fault accounting, and the
// CKI engine's delegated-segment memory management.
#include <gtest/gtest.h>

#include "src/cki/cki_engine.h"
#include "src/runtime/runtime.h"
#include "src/virt/hvm_engine.h"
#include "src/virt/pvm_engine.h"

namespace cki {
namespace {

// --- HVM --------------------------------------------------------------------

TEST(HvmBehavior, DataPagesBackLazilyOnFirstTouch) {
  Testbed bed(RuntimeKind::kHvm, Deployment::kBareMetal);
  auto& engine = static_cast<HvmEngine&>(bed.engine());
  uint64_t mapped_before = engine.ept().mapped_pages();
  uint64_t base = bed.engine().MmapAnon(2 * kPageSize, false);
  // mmap alone maps nothing in the EPT.
  EXPECT_EQ(engine.ept().mapped_pages(), mapped_before);
  auto before = bed.ctx().trace().Snapshot();
  ASSERT_EQ(bed.engine().UserTouch(base, true), TouchResult::kOk);
  EXPECT_EQ(CountDelta(before, bed.ctx().trace(), PathEvent::kEptViolation), 1u);
  EXPECT_GT(engine.ept().mapped_pages(), mapped_before);
  // Second touch of the same page: no further violation.
  before = bed.ctx().trace().Snapshot();
  ASSERT_EQ(bed.engine().UserTouch(base, true), TouchResult::kOk);
  EXPECT_EQ(CountDelta(before, bed.ctx().trace(), PathEvent::kEptViolation), 0u);
}

TEST(HvmBehavior, RecycledGuestPagesKeepBacking) {
  Testbed bed(RuntimeKind::kHvm, Deployment::kBareMetal);
  uint64_t base = bed.engine().MmapAnon(kPageSize, false);
  ASSERT_EQ(bed.engine().UserTouch(base, true), TouchResult::kOk);
  bed.engine().UserSyscall(SyscallRequest{.no = Sys::kMunmap, .arg0 = base, .arg1 = kPageSize});
  // A new mapping reuses the freed gPA: warm EPT, no violation.
  uint64_t base2 = bed.engine().MmapAnon(kPageSize, false);
  auto before = bed.ctx().trace().Snapshot();
  ASSERT_EQ(bed.engine().UserTouch(base2, true), TouchResult::kOk);
  EXPECT_EQ(CountDelta(before, bed.ctx().trace(), PathEvent::kEptViolation), 0u);
}

TEST(HvmBehavior, HugeEptBackingAmortizesViolations) {
  Testbed bed(RuntimeKind::kHvm, Deployment::kBareMetal);
  auto& engine = static_cast<HvmEngine&>(bed.engine());
  engine.set_ept_huge_pages(true);
  constexpr int kPages = 64;
  uint64_t base = bed.engine().MmapAnon(kPages * kPageSize, false);
  auto before = bed.ctx().trace().Snapshot();
  for (int i = 0; i < kPages; ++i) {
    ASSERT_EQ(bed.engine().UserTouch(base + static_cast<uint64_t>(i) * kPageSize, true),
              TouchResult::kOk);
  }
  // 64 fresh 4K pages inside one (or two) 2 MiB regions: <= 2 violations.
  EXPECT_LE(CountDelta(before, bed.ctx().trace(), PathEvent::kEptViolation), 2u);
}

TEST(HvmBehavior, NestedHypercallCostsL0Intervention) {
  Testbed bm(RuntimeKind::kHvm, Deployment::kBareMetal);
  Testbed nst(RuntimeKind::kHvm, Deployment::kNested);
  SimNanos bm_cost = bm.Measure([&] { bm.engine().GuestHypercall(HypercallOp::kNop); });
  SimNanos nst_cost = nst.Measure([&] { nst.engine().GuestHypercall(HypercallOp::kNop); });
  EXPECT_GT(nst_cost, 5 * bm_cost);
}

// --- PVM --------------------------------------------------------------------

TEST(PvmBehavior, HardwareRunsOnShadowTables) {
  Testbed bed(RuntimeKind::kPvm, Deployment::kBareMetal);
  auto& engine = static_cast<PvmEngine&>(bed.engine());
  uint64_t base = bed.engine().MmapAnon(kPageSize, false);
  uint64_t fills_before = engine.shadow_fills();
  ASSERT_EQ(bed.engine().UserTouch(base, true), TouchResult::kOk);
  EXPECT_GT(engine.shadow_fills(), fills_before) << "fault must sync a shadow leaf";
  // The hardware CR3 points at a host-owned root, not the guest's table.
  uint64_t hw_root = Cr3Root(bed.machine().cpu().cr3());
  EXPECT_NE(hw_root, bed.engine().kernel().current().pt_root);
  EXPECT_EQ(bed.machine().frames().OwnerOf(hw_root), kHostOwner);
}

TEST(PvmBehavior, GuestUnmapInvalidatesShadow) {
  Testbed bed(RuntimeKind::kPvm, Deployment::kBareMetal);
  uint64_t base = bed.engine().MmapAnon(kPageSize, false);
  ASSERT_EQ(bed.engine().UserTouch(base, true), TouchResult::kOk);
  bed.engine().UserSyscall(SyscallRequest{.no = Sys::kMunmap, .arg0 = base, .arg1 = kPageSize});
  EXPECT_EQ(bed.engine().UserTouch(base, false), TouchResult::kSegv)
      << "stale shadow entries must not survive a guest unmap";
}

TEST(PvmBehavior, PteUpdatesCountShadowEmulations) {
  Testbed bed(RuntimeKind::kPvm, Deployment::kBareMetal);
  auto& engine = static_cast<PvmEngine&>(bed.engine());
  uint64_t base = bed.engine().MmapAnon(kPageSize, true);
  uint64_t emul_before = engine.spt_emulations();
  bed.engine().UserSyscall(SyscallRequest{
      .no = Sys::kMprotect, .arg0 = base, .arg1 = kPageSize, .arg2 = kProtRead});
  EXPECT_GT(engine.spt_emulations(), emul_before);
}

TEST(PvmBehavior, BatchedUpdatesAmortizeExits) {
  // fork() clones dozens of PTEs; batching must keep the exit count far
  // below one per PTE.
  Testbed bed(RuntimeKind::kPvm, Deployment::kBareMetal);
  uint64_t base = bed.engine().MmapAnon(40 * kPageSize, true);
  (void)base;
  auto before = bed.ctx().trace().Snapshot();
  SyscallResult r = bed.engine().UserSyscall(SyscallRequest{.no = Sys::kFork});
  ASSERT_TRUE(r.ok());
  uint64_t exits = CountDelta(before, bed.ctx().trace(), PathEvent::kVmExit);
  uint64_t updates = CountDelta(before, bed.ctx().trace(), PathEvent::kPteUpdate);
  EXPECT_GT(updates, 40u);
  EXPECT_LT(exits, updates / 4) << "fork PTE updates must batch";
}

TEST(PvmBehavior, ForkedChildFaultsRefillShadowLazily) {
  Testbed bed(RuntimeKind::kPvm, Deployment::kBareMetal);
  auto& engine = static_cast<PvmEngine&>(bed.engine());
  GuestKernel& kernel = bed.engine().kernel();
  uint64_t base = bed.engine().MmapAnon(4 * kPageSize, true);
  SyscallResult r = bed.engine().UserSyscall(SyscallRequest{.no = Sys::kFork});
  ASSERT_TRUE(r.ok());
  kernel.SwitchTo(static_cast<int>(r.value));
  uint64_t fills_before = engine.shadow_fills();
  // Child reads inherited memory: the guest PTE exists (read-only CoW),
  // only the child's shadow needs filling.
  ASSERT_EQ(bed.engine().UserTouch(base, false), TouchResult::kOk);
  EXPECT_GT(engine.shadow_fills(), fills_before);
}

// --- CKI --------------------------------------------------------------------

TEST(CkiBehavior, GuestMemoryComesFromDelegatedSegment) {
  Testbed bed(RuntimeKind::kCki, Deployment::kBareMetal);
  auto& engine = static_cast<CkiEngine&>(bed.engine());
  uint64_t base = bed.engine().MmapAnon(kPageSize, false);
  ASSERT_EQ(bed.engine().UserTouch(base, true), TouchResult::kOk);
  WalkResult walk =
      bed.engine().kernel().editor().Walk(bed.engine().kernel().current().pt_root, base);
  ASSERT_TRUE(walk.fault.ok());
  // The PTE holds a host-physical address inside the delegated segment —
  // no gPA indirection exists at all.
  EXPECT_TRUE(engine.segment().Contains(PteAddr(walk.leaf_pte)));
  EXPECT_EQ(bed.machine().frames().OwnerOf(PteAddr(walk.leaf_pte)), engine.id());
}

TEST(CkiBehavior, EveryPteStoreIsMonitorChecked) {
  Testbed bed(RuntimeKind::kCki, Deployment::kBareMetal);
  auto& engine = static_cast<CkiEngine&>(bed.engine());
  uint64_t checked_before = engine.ksm().monitor().checked_stores();
  uint64_t base = bed.engine().MmapAnon(4 * kPageSize, false);
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(bed.engine().UserTouch(base + static_cast<uint64_t>(i) * kPageSize, true),
              TouchResult::kOk);
  }
  EXPECT_GE(engine.ksm().monitor().checked_stores() - checked_before, 4u);
  EXPECT_EQ(engine.ksm().monitor().rejected_stores(), 0u);
}

TEST(CkiBehavior, HardwareCr3PointsAtPerVcpuCopy) {
  Testbed bed(RuntimeKind::kCki, Deployment::kBareMetal);
  auto& engine = static_cast<CkiEngine&>(bed.engine());
  uint64_t guest_root = bed.engine().kernel().current().pt_root;
  uint64_t hw_root = Cr3Root(bed.machine().cpu().cr3());
  EXPECT_NE(hw_root, guest_root);
  EXPECT_EQ(hw_root, engine.ksm().TopLevelCopy(guest_root, 0));
}

TEST(CkiBehavior, ProcessExitReturnsPagesToSegmentPool) {
  Testbed bed(RuntimeKind::kCki, Deployment::kBareMetal);
  GuestKernel& kernel = bed.engine().kernel();
  auto& engine = static_cast<CkiEngine&>(bed.engine());
  uint64_t declared_before = engine.ksm().monitor().declared_ptps();
  SyscallResult r = bed.engine().UserSyscall(SyscallRequest{.no = Sys::kFork});
  ASSERT_TRUE(r.ok());
  kernel.SwitchTo(static_cast<int>(r.value));
  uint64_t child_heap = bed.engine().MmapAnon(8 * kPageSize, true);
  (void)child_heap;
  bed.engine().UserSyscall(SyscallRequest{.no = Sys::kExit});
  bed.engine().UserSyscall(SyscallRequest{.no = Sys::kWaitpid, .arg0 = 0});
  // The child's PTPs were undeclared on teardown.
  EXPECT_EQ(engine.ksm().monitor().declared_ptps(), declared_before);
}

TEST(CkiBehavior, AblationsOnlyAffectLatencyNotSemantics) {
  for (RuntimeKind kind : {RuntimeKind::kCkiNoOpt2, RuntimeKind::kCkiNoOpt3}) {
    Testbed bed(kind, Deployment::kBareMetal);
    uint64_t base = bed.engine().MmapAnon(kPageSize, false);
    EXPECT_EQ(bed.engine().UserTouch(base, true), TouchResult::kOk);
    EXPECT_TRUE(bed.engine().UserSyscall(SyscallRequest{.no = Sys::kGetpid}).ok());
  }
}

// --- cross-engine property: nested deployment never changes results ------------

class NestedEquivalenceTest : public ::testing::TestWithParam<RuntimeKind> {};

TEST_P(NestedEquivalenceTest, FunctionalResultsMatchAcrossDeployments) {
  Testbed bm(GetParam(), Deployment::kBareMetal);
  Testbed nst(GetParam(), Deployment::kNested);
  for (Testbed* bed : {&bm, &nst}) {
    uint64_t base = bed->engine().MmapAnon(2 * kPageSize, false);
    EXPECT_EQ(bed->engine().UserTouch(base, true), TouchResult::kOk);
    SyscallResult fd = bed->engine().UserSyscall(SyscallRequest{.no = Sys::kOpen, .arg0 = 9});
    EXPECT_TRUE(fd.ok());
    EXPECT_EQ(bed->engine()
                  .UserSyscall(SyscallRequest{
                      .no = Sys::kWrite, .arg0 = static_cast<uint64_t>(fd.value), .arg1 = 100})
                  .value,
              100);
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, NestedEquivalenceTest,
                         ::testing::Values(RuntimeKind::kHvm, RuntimeKind::kPvm,
                                           RuntimeKind::kCki),
                         [](const ::testing::TestParamInfo<RuntimeKind>& param_info) {
                           return std::string(RuntimeKindName(param_info.param));
                         });

}  // namespace
}  // namespace cki
