// Tests for the benchmark reporting tables.
#include <gtest/gtest.h>

#include <sstream>

#include "src/metrics/report.h"
#include "src/obs/json_util.h"

namespace cki {
namespace {

ReportTable SampleTable() {
  ReportTable t("sample", "config", {"a", "b"});
  t.AddRow("base", {10.0, 40.0});
  t.AddRow("fast", {5.0, 20.0});
  t.AddRow("slow", {20.0, 80.0});
  return t;
}

TEST(ReportTableTest, ValueLookup) {
  ReportTable t = SampleTable();
  EXPECT_DOUBLE_EQ(t.ValueAt("base", 0), 10.0);
  EXPECT_DOUBLE_EQ(t.ValueAt("slow", 1), 80.0);
  EXPECT_THROW(t.ValueAt("missing", 0), std::out_of_range);
}

TEST(ReportTableTest, NormalizationDividesByBaselineRow) {
  ReportTable norm = SampleTable().NormalizedTo("base");
  EXPECT_DOUBLE_EQ(norm.ValueAt("base", 0), 1.0);
  EXPECT_DOUBLE_EQ(norm.ValueAt("fast", 0), 0.5);
  EXPECT_DOUBLE_EQ(norm.ValueAt("slow", 1), 2.0);
}

TEST(ReportTableTest, PrintIsAlignedAndRestoresStream) {
  ReportTable t = SampleTable();
  std::ostringstream os;
  os << 3.14159;  // default formatting before
  t.Print(os, 2);
  os << 3.14159;  // must print identically after
  std::string s = os.str();
  EXPECT_NE(s.find("== sample =="), std::string::npos);
  EXPECT_NE(s.find("config"), std::string::npos);
  EXPECT_NE(s.find("10.00"), std::string::npos);
  // Stream state restored: both bare prints identical.
  size_t first = s.find("3.14159");
  size_t last = s.rfind("3.14159");
  EXPECT_NE(first, std::string::npos);
  EXPECT_NE(first, last);
}

TEST(ReportTableTest, CsvOutput) {
  ReportTable t = SampleTable();
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(),
            "config,a,b\n"
            "base,10,40\n"
            "fast,5,20\n"
            "slow,20,80\n");
}

TEST(ReportTableTest, MissingValuesPrintAsZero) {
  ReportTable t("partial", "row", {"x", "y", "z"});
  t.AddRow("short", {1.0});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "row,x,y,z\nshort,1,0,0\n");
}

TEST(ReportTableTest, JsonOutputMirrorsRowColumnModel) {
  ReportTable t = SampleTable();
  std::ostringstream os;
  t.PrintJson(os);
  EXPECT_EQ(os.str(),
            "{\"title\":\"sample\",\"row_header\":\"config\",\"columns\":[\"a\",\"b\"],"
            "\"rows\":[{\"label\":\"base\",\"values\":[10,40]},"
            "{\"label\":\"fast\",\"values\":[5,20]},"
            "{\"label\":\"slow\",\"values\":[20,80]}]}");

  // The emitted text is real JSON: parse it back and check the model.
  std::string error;
  std::optional<JsonValue> parsed = ParseJson(os.str(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->kind, JsonValue::Kind::kObject);
  const JsonValue* rows = parsed->Find("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->items.size(), 3u);
  const JsonValue* label = rows->items[2].Find("label");
  ASSERT_NE(label, nullptr);
  EXPECT_EQ(label->string_value, "slow");
}

TEST(ReportTableTest, MergeRowsMeanIsWeightedByRowCount) {
  // A shard that averaged 4 samples and one that averaged 1 must merge to
  // the flat mean of all 5 samples, not the midpoint of the two means.
  ReportTable a("t", "config", {"lat"});
  a.AddRow("CKI", {10.0}, /*weight=*/4);
  ReportTable b("t", "config", {"lat"});
  b.AddRow("CKI", {20.0}, /*weight=*/1);
  a.MergeRows(b, MergeOp::kMean);
  EXPECT_DOUBLE_EQ(a.ValueAt("CKI", 0), 12.0);  // (10*4 + 20*1) / 5
  EXPECT_EQ(a.WeightAt("CKI"), 5u);

  // Merging a third table keeps weighting by total source rows.
  ReportTable c("t", "config", {"lat"});
  c.AddRow("CKI", {0.0}, /*weight=*/5);
  a.MergeRows(c, MergeOp::kMean);
  EXPECT_DOUBLE_EQ(a.ValueAt("CKI", 0), 6.0);  // (12*5 + 0*5) / 10
  EXPECT_EQ(a.WeightAt("CKI"), 10u);
}

TEST(ReportTableTest, MergeRowsMeanAppendsNewLabelsWithTheirWeight) {
  ReportTable a("t", "config", {"lat"});
  a.AddRow("CKI", {10.0});
  ReportTable b("t", "config", {"lat"});
  b.AddRow("PVM", {30.0}, /*weight=*/3);
  a.MergeRows(b, MergeOp::kMean);
  EXPECT_DOUBLE_EQ(a.ValueAt("PVM", 0), 30.0);
  EXPECT_EQ(a.WeightAt("PVM"), 3u);
  // Default-weight rows still average 1:1.
  ReportTable c("t", "config", {"lat"});
  c.AddRow("CKI", {30.0});
  a.MergeRows(c, MergeOp::kMean);
  EXPECT_DOUBLE_EQ(a.ValueAt("CKI", 0), 20.0);
}

TEST(ReportTableTest, MergeRowsSumStillAccumulatesWeights) {
  // Non-mean ops ignore weights for values but keep the row-count
  // bookkeeping, so a later kMean merge stays correctly weighted.
  ReportTable a("t", "config", {"ops"});
  a.AddRow("CKI", {100.0}, /*weight=*/2);
  ReportTable b("t", "config", {"ops"});
  b.AddRow("CKI", {50.0}, /*weight=*/3);
  a.MergeRows(b, MergeOp::kSum);
  EXPECT_DOUBLE_EQ(a.ValueAt("CKI", 0), 150.0);
  EXPECT_EQ(a.WeightAt("CKI"), 5u);
}

TEST(ReportTableTest, JsonEscapesSpecialCharacters) {
  ReportTable t("ti\"tle\\", "row", {"c1"});
  t.AddRow("a\nb", {1.5});
  std::ostringstream os;
  t.PrintJson(os);
  std::string error;
  std::optional<JsonValue> parsed = ParseJson(os.str(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const JsonValue* title = parsed->Find("title");
  ASSERT_NE(title, nullptr);
  EXPECT_EQ(title->string_value, "ti\"tle\\");
}

}  // namespace
}  // namespace cki
