// Multi-vCPU tests: the per-vCPU top-level copies and constant-VA per-vCPU
// areas of section 4.2 / Figure 8c, exercised with more than one vCPU.
#include <gtest/gtest.h>

#include "src/cki/cki_engine.h"
#include "src/hw/pks.h"
#include "src/runtime/runtime.h"

namespace cki {
namespace {

class MultiVcpuTest : public ::testing::Test {
 protected:
  MultiVcpuTest() : machine_(MachineConfigFor(RuntimeKind::kCki, Deployment::kBareMetal)) {
    engine_ = std::make_unique<CkiEngine>(machine_, CkiAblation::kNone, /*segment_pages=*/16384,
                                          /*n_vcpus=*/4);
    engine_->Boot();
  }

  Machine machine_;
  std::unique_ptr<CkiEngine> engine_;
};

TEST_F(MultiVcpuTest, EveryVcpuHasItsOwnTopLevelCopy) {
  uint64_t root = engine_->kernel().current().pt_root;
  std::set<uint64_t> copies;
  for (int v = 0; v < 4; ++v) {
    uint64_t copy = engine_->ksm().TopLevelCopy(root, v);
    ASSERT_NE(copy, 0u) << "vcpu " << v;
    copies.insert(copy);
  }
  EXPECT_EQ(copies.size(), 4u) << "copies must be distinct physical pages";
}

TEST_F(MultiVcpuTest, ConstantVaMapsDifferentAreaPerVcpu) {
  // The defining property of Fig 8c: the same virtual address resolves to
  // a different per-vCPU area page depending on which copy is loaded.
  Cpu& cpu = machine_.cpu();
  cpu.set_cpl(Cpl::kKernel);
  cpu.SetPkrsDirect(kPkrsMonitor);  // KSM context can touch its area
  std::set<uint64_t> pas;
  for (int v = 0; v < 4; ++v) {
    cpu.SetPkrsDirect(kPkrsGuest);
    ASSERT_TRUE(engine_->SelectVcpu(v));
    cpu.SetPkrsDirect(kPkrsMonitor);
    cpu.tlb().FlushAll();  // force a fresh walk through the new copy
    uint64_t pa = 0;
    Fault f = cpu.AccessTranslate(engine_->ksm().per_vcpu_area_va(), AccessIntent::Write(), &pa);
    ASSERT_TRUE(f.ok()) << "vcpu " << v << ": " << FaultTypeName(f.type);
    EXPECT_EQ(pa & ~(kPageSize - 1), engine_->ksm().per_vcpu_area_pa(v));
    pas.insert(pa & ~(kPageSize - 1));
  }
  EXPECT_EQ(pas.size(), 4u) << "one secure-stack page per vCPU";
  cpu.SetPkrsDirect(kPkrsGuest);
  engine_->SelectVcpu(0);
}

TEST_F(MultiVcpuTest, GuestMappingsVisibleFromEveryVcpu) {
  uint64_t base = engine_->MmapAnon(2 * kPageSize, false);
  ASSERT_EQ(engine_->UserTouch(base, true), TouchResult::kOk);
  for (int v = 1; v < 4; ++v) {
    machine_.cpu().SetPkrsDirect(kPkrsGuest);
    machine_.cpu().set_cpl(Cpl::kKernel);
    ASSERT_TRUE(engine_->SelectVcpu(v));
    EXPECT_EQ(engine_->UserTouch(base, false), TouchResult::kOk)
        << "copies share the lower table levels, so data is coherent";
  }
  machine_.cpu().set_cpl(Cpl::kKernel);
  machine_.cpu().SetPkrsDirect(kPkrsGuest);
  engine_->SelectVcpu(0);
}

TEST_F(MultiVcpuTest, TopLevelUpdatesReachAllCopies) {
  // Fault in a page whose top-level slot is new, then verify every copy
  // carries the new PML4 entry.
  uint64_t far_va = 0x5000'0000'0000;  // a fresh PML4 slot (index 160)
  engine_->kernel().current().vmas.Insert(Vma{.start = far_va,
                                              .end = far_va + kPageSize,
                                              .prot = kProtRead | kProtWrite,
                                              .kind = VmaKind::kAnon});
  ASSERT_EQ(engine_->UserTouch(far_va, true), TouchResult::kOk);
  uint64_t root = engine_->kernel().current().pt_root;
  int slot = PtIndex(far_va, kPtLevels);
  uint64_t original = machine_.mem().ReadU64(root + static_cast<uint64_t>(slot) * 8);
  ASSERT_TRUE(PtePresent(original));
  for (int v = 0; v < 4; ++v) {
    uint64_t copy = engine_->ksm().TopLevelCopy(root, v);
    EXPECT_EQ(machine_.mem().ReadU64(copy + static_cast<uint64_t>(slot) * 8), original)
        << "vcpu " << v;
  }
}

TEST_F(MultiVcpuTest, SelectVcpuRejectsOutOfRange) {
  machine_.cpu().set_cpl(Cpl::kKernel);
  machine_.cpu().SetPkrsDirect(kPkrsGuest);
  EXPECT_FALSE(engine_->SelectVcpu(-1));
  EXPECT_FALSE(engine_->SelectVcpu(4));
  EXPECT_TRUE(engine_->SelectVcpu(3));
  engine_->SelectVcpu(0);
}

TEST_F(MultiVcpuTest, AccessedBitsAggregateAcrossVcpuCopies) {
  uint64_t root = engine_->kernel().current().pt_root;
  int slot = PtIndex(kUserTextBase, kPtLevels);
  engine_->UserTouch(kUserTextBase, false);  // ensure the slot exists
  // Hardware marks A in two different copies (two vCPUs ran the thread).
  for (int v : {1, 3}) {
    uint64_t copy = engine_->ksm().TopLevelCopy(root, v);
    uint64_t off = static_cast<uint64_t>(slot) * 8;
    machine_.mem().WriteU64(copy + off, machine_.mem().ReadU64(copy + off) | kPteA);
  }
  uint64_t merged = engine_->ksm().ReadTopLevelPte(root, slot);
  EXPECT_TRUE((merged & kPteA) != 0);
}

}  // namespace
}  // namespace cki
