// Tests for src/snap: checkpoint/restore round trips across every engine,
// corruption rejection as a typed fault, copy-on-write clones (frame
// sharing, CoW breaks, kill independence), and cross-shard migration
// determinism.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/cki/cki_engine.h"
#include "src/cluster/sim_cluster.h"
#include "src/fault/fault_injector.h"
#include "src/hw/pte.h"
#include "src/runtime/runtime.h"
#include "src/snap/snap_stream.h"
#include "src/snap/snapshot.h"

namespace cki {
namespace {

constexpr uint64_t kMarker = 0x5EEDF00DCAFEF00DULL;

// Engines share one CPU per machine: reload this engine's address space
// before driving touches through the MMU.
void Activate(ContainerEngine& e) {
  Process& p = e.kernel().current();
  e.LoadAddressSpace(p.pt_root, p.asid);
}

// Host frame backing `va` in the engine's current process; kNoPage if
// unmapped. Materializes lazy (HVM/PVM) backing so callers can read or
// write the content directly.
uint64_t MappedHostPa(ContainerEngine& e, uint64_t va) {
  Process& p = e.kernel().current();
  WalkResult walk = e.kernel().editor().Walk(p.pt_root, va);
  if (!walk.fault.ok()) {
    return kNoPage;
  }
  return e.EnsureHostFrame(PteAddr(walk.leaf_pte));
}

// Puts representative state into a freshly booted container: a tmpfs file,
// a pipe, a grown heap, a populated mapping with marker content — and
// (optionally) a forked child so page_refs_ has CoW entries.
uint64_t Warm(ContainerEngine& e, Machine& machine, bool with_fork) {
  SyscallResult r = e.UserSyscall(SyscallRequest{.no = Sys::kOpen, .arg0 = 7});
  EXPECT_TRUE(r.ok());
  uint64_t fd = static_cast<uint64_t>(r.value);
  EXPECT_TRUE(e.UserSyscall(SyscallRequest{.no = Sys::kWrite, .arg0 = fd, .arg1 = 3000}).ok());
  EXPECT_TRUE(e.UserSyscall(SyscallRequest{.no = Sys::kPipe}).ok());
  EXPECT_TRUE(
      e.UserSyscall(SyscallRequest{.no = Sys::kBrk, .arg0 = kUserHeapBase + 4 * kPageSize}).ok());
  uint64_t base = e.MmapAnon(4 * kPageSize, /*populate=*/true);
  EXPECT_NE(base, 0u);
  if (with_fork) {
    EXPECT_TRUE(e.UserSyscall(SyscallRequest{.no = Sys::kFork}).ok());
  }
  uint64_t host = MappedHostPa(e, base);
  EXPECT_NE(host, kNoPage);
  machine.mem().WriteU64(host, kMarker);
  return base;
}

// Deterministic post-restore probe: syscall return values + kernel
// counters (no gettimeofday — the only clock-dependent syscall).
std::vector<int64_t> Probe(ContainerEngine& e) {
  std::vector<int64_t> vals;
  vals.push_back(e.UserSyscall(SyscallRequest{.no = Sys::kGetpid}).value);
  vals.push_back(e.UserSyscall(SyscallRequest{.no = Sys::kOpen, .arg0 = 7}).value);
  int64_t fd = vals.back();
  if (fd >= 0) {
    vals.push_back(e.UserSyscall(SyscallRequest{.no = Sys::kRead,
                                                .arg0 = static_cast<uint64_t>(fd),
                                                .arg1 = 1024})
                       .value);
    vals.push_back(e.UserSyscall(SyscallRequest{.no = Sys::kFstat,
                                                .arg0 = static_cast<uint64_t>(fd)})
                       .value);
  }
  vals.push_back(e.UserSyscall(SyscallRequest{.no = Sys::kBrk, .arg0 = 0}).value);
  vals.push_back(static_cast<int64_t>(e.kernel().total_syscalls()));
  vals.push_back(static_cast<int64_t>(e.kernel().live_processes()));
  return vals;
}

const RuntimeKind kAllKinds[] = {RuntimeKind::kRunc, RuntimeKind::kHvm,  RuntimeKind::kPvm,
                                 RuntimeKind::kCki,  RuntimeKind::kGvisor, RuntimeKind::kLibOs};

// --- checkpoint / restore ----------------------------------------------------

TEST(Snapshot, RoundTripIsByteIdenticalAcrossAllEngines) {
  for (RuntimeKind kind : kAllKinds) {
    SCOPED_TRACE(std::string(RuntimeKindName(kind)));
    Testbed bed(kind, Deployment::kBareMetal);
    bool with_fork = kind != RuntimeKind::kLibOs;  // LibOS blocks fork
    uint64_t base = Warm(bed.engine(), bed.machine(), with_fork);

    SnapshotImage img1 = CheckpointContainer(bed.engine());
    ASSERT_TRUE(img1.Valid());
    EXPECT_EQ(img1.kind(), kind);

    Machine other(MachineConfigFor(kind, Deployment::kBareMetal));
    RestoreOutcome out = RestoreContainer(other, img1);
    ASSERT_TRUE(out.ok) << "restore failed: " << FaultKindName(out.fault.kind);
    ASSERT_NE(out.engine, nullptr);

    // checkpoint(restore(checkpoint(x))) == checkpoint(x), bit for bit.
    SnapshotImage img2 = CheckpointContainer(*out.engine);
    EXPECT_EQ(img1.bytes, img2.bytes);
    EXPECT_EQ(img1.content_hash(), img2.content_hash());

    // Frame contents migrated (under fresh host frames).
    uint64_t restored_host = MappedHostPa(*out.engine, base);
    ASSERT_NE(restored_host, kNoPage);
    EXPECT_EQ(other.mem().ReadU64(restored_host), kMarker);

    // The restored container keeps serving: identical observable behavior.
    EXPECT_EQ(Probe(bed.engine()), Probe(*out.engine));
  }
}

TEST(Snapshot, CorruptStreamRejectedWithTypedFault) {
  Testbed bed(RuntimeKind::kCki, Deployment::kBareMetal);
  Warm(bed.engine(), bed.machine(), /*with_fork=*/true);

  FaultInjector injector(InjectorConfig{.seed = 99, .snapshot_corrupt_rate = 1.0});
  SnapshotImage img = CheckpointContainer(bed.engine(), &injector);
  EXPECT_EQ(injector.injected(), 1u);
  EXPECT_FALSE(img.Valid());

  Machine other(MachineConfigFor(RuntimeKind::kCki, Deployment::kBareMetal));
  RestoreOutcome out = RestoreContainer(other, img);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.engine, nullptr);
  EXPECT_EQ(out.fault.kind, FaultKind::kSnapshotCorrupt);
  EXPECT_EQ(other.faults().CountForKind(FaultKind::kSnapshotCorrupt), 1u);
}

TEST(Snapshot, ManualBitFlipAnywhereIsRejected) {
  Testbed bed(RuntimeKind::kRunc, Deployment::kBareMetal);
  Warm(bed.engine(), bed.machine(), /*with_fork=*/false);
  SnapshotImage img = CheckpointContainer(bed.engine());
  ASSERT_TRUE(img.Valid());

  SnapshotImage flipped = img;
  flipped.bytes[flipped.bytes.size() / 2] ^= 0x10;
  EXPECT_FALSE(flipped.Valid());
  Machine other(MachineConfigFor(RuntimeKind::kRunc, Deployment::kBareMetal));
  EXPECT_FALSE(RestoreContainer(other, flipped).ok);

  // The untouched image still restores on the same machine afterwards.
  EXPECT_TRUE(RestoreContainer(other, img).ok);
}

// --- copy-on-write clones ----------------------------------------------------

TEST(Clone, SharesFramesAndBreaksOnFirstWrite) {
  Machine machine(MachineConfigFor(RuntimeKind::kRunc, Deployment::kBareMetal));
  std::unique_ptr<ContainerEngine> parent = MakeEngine(machine, RuntimeKind::kRunc);
  parent->Boot();
  uint64_t base = Warm(*parent, machine, /*with_fork=*/false);
  uint64_t parent_host = MappedHostPa(*parent, base);

  std::unique_ptr<ContainerEngine> clone = CloneContainer(*parent);
  uint64_t shared = machine.frames().SharedFrames(clone->id());
  EXPECT_GT(shared, 0u) << "a clone must share its template's frames";
  EXPECT_EQ(MappedHostPa(*clone, base), parent_host) << "same frame until someone writes";

  // Clone writes: it gets a private copy, drops exactly one share, and the
  // template's frame (with the marker) is untouched.
  Activate(*clone);
  ASSERT_EQ(clone->UserTouch(base, /*write=*/true), TouchResult::kOk);
  EXPECT_EQ(machine.frames().SharedFrames(clone->id()), shared - 1);
  EXPECT_NE(MappedHostPa(*clone, base), parent_host);
  EXPECT_EQ(machine.frames().OwnerOf(parent_host), parent->id());
  EXPECT_EQ(machine.mem().ReadU64(parent_host), kMarker);

  // Template writes a *different* shared page: primacy of that frame moves
  // to the clone (the only remaining holder) instead of being freed.
  uint64_t page2 = base + kPageSize;
  uint64_t page2_host = MappedHostPa(*parent, page2);
  Activate(*parent);
  ASSERT_EQ(parent->UserTouch(page2, /*write=*/true), TouchResult::kOk);
  EXPECT_EQ(machine.frames().OwnerOf(page2_host), clone->id());
  EXPECT_NE(MappedHostPa(*parent, page2), page2_host);
}

TEST(Clone, CkiCloneMapsSharedFramesPastTheMonitor) {
  Machine machine(MachineConfigFor(RuntimeKind::kCki, Deployment::kBareMetal));
  auto parent = std::make_unique<CkiEngine>(machine, CkiAblation::kNone,
                                            /*segment_pages=*/4096);
  parent->Boot();
  uint64_t base = Warm(*parent, machine, /*with_fork=*/true);

  std::unique_ptr<ContainerEngine> clone = CloneContainer(*parent);
  EXPECT_EQ(clone->kind(), RuntimeKind::kCki);
  EXPECT_GT(machine.frames().SharedFrames(clone->id()), 0u);
  EXPECT_TRUE(clone->alive()) << "monitor must accept shared-frame mappings";

  Activate(*clone);
  EXPECT_EQ(clone->UserTouch(base, /*write=*/true), TouchResult::kOk);
  EXPECT_TRUE(clone->alive());
  EXPECT_TRUE(parent->alive());
}

TEST(Clone, KillingParentLeavesClonesServing) {
  Machine machine(MachineConfigFor(RuntimeKind::kRunc, Deployment::kBareMetal));
  std::unique_ptr<ContainerEngine> parent = MakeEngine(machine, RuntimeKind::kRunc);
  parent->Boot();
  uint64_t base = Warm(*parent, machine, /*with_fork=*/false);

  std::unique_ptr<ContainerEngine> clone_a = CloneContainer(*parent);
  std::unique_ptr<ContainerEngine> clone_b = CloneContainer(*parent);

  machine.faults().Kill(FaultReport{FaultKind::kProtectionViolation, parent->id(), 0});
  EXPECT_FALSE(parent->alive());
  EXPECT_EQ(machine.frames().OwnedFrames(parent->id()), 0u);

  for (ContainerEngine* clone : {clone_a.get(), clone_b.get()}) {
    EXPECT_TRUE(clone->alive());
    Activate(*clone);
    EXPECT_EQ(clone->UserTouch(base, /*write=*/false), TouchResult::kOk);
    uint64_t host = MappedHostPa(*clone, base);
    ASSERT_NE(host, kNoPage);
    EXPECT_EQ(machine.mem().ReadU64(host), kMarker) << "shared content must outlive the parent";
    EXPECT_TRUE(clone->UserSyscall(SyscallRequest{.no = Sys::kGetpid}).ok());
  }
}

TEST(Clone, KillingCloneLeavesParentFramesIntact) {
  Machine machine(MachineConfigFor(RuntimeKind::kRunc, Deployment::kBareMetal));
  std::unique_ptr<ContainerEngine> parent = MakeEngine(machine, RuntimeKind::kRunc);
  parent->Boot();
  uint64_t base = Warm(*parent, machine, /*with_fork=*/false);
  uint64_t owned_before = machine.frames().OwnedFrames(parent->id());

  std::unique_ptr<ContainerEngine> clone = CloneContainer(*parent);
  clone->KillFromFault();
  EXPECT_EQ(machine.frames().SharedFrames(clone->id()), 0u);
  EXPECT_EQ(machine.frames().OwnedFrames(clone->id()), 0u);
  EXPECT_EQ(machine.frames().OwnedFrames(parent->id()), owned_before);

  Activate(*parent);
  EXPECT_EQ(parent->UserTouch(base, /*write=*/true), TouchResult::kOk);
  EXPECT_TRUE(parent->UserSyscall(SyscallRequest{.no = Sys::kGetpid}).ok());
}

TEST(Snapshot, NetTraceContextSurvivesCheckpointRestoreAndClone) {
  // The ambient net trace (the causal identity of the request currently in
  // service, DESIGN.md §11) is kernel state: it must ride the CKISNAP1
  // stream so a migrated container's next response still carries it.
  Testbed bed(RuntimeKind::kCki, Deployment::kBareMetal);
  Warm(bed.engine(), bed.machine(), /*with_fork=*/true);
  bed.engine().kernel().set_net_trace(TraceContext{0xABCD, 0x1234});

  SnapshotImage img = CheckpointContainer(bed.engine());
  ASSERT_TRUE(img.Valid());
  Machine other(MachineConfigFor(RuntimeKind::kCki, Deployment::kBareMetal));
  RestoreOutcome out = RestoreContainer(other, img);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.engine->kernel().net_trace().trace_id, 0xABCDu);
  EXPECT_EQ(out.engine->kernel().net_trace().span_id, 0x1234u);

  // A CoW clone adopts its template's in-service identity as well.
  std::unique_ptr<ContainerEngine> clone = CloneContainer(*out.engine);
  EXPECT_EQ(clone->kernel().net_trace().trace_id, 0xABCDu);
  EXPECT_EQ(clone->kernel().net_trace().span_id, 0x1234u);
}

// --- cross-shard migration ---------------------------------------------------

TEST(Snapshot, CrossShardMigrationReproducesWorkloadExactly) {
  Testbed bed(RuntimeKind::kCki, Deployment::kBareMetal);
  Warm(bed.engine(), bed.machine(), /*with_fork=*/true);
  SnapshotImage img = CheckpointContainer(bed.engine());
  ASSERT_TRUE(img.Valid());

  auto workload_hash = [](ContainerEngine& e) {
    uint64_t h = kFnvOffsetBasis;
    auto mix = [&h](uint64_t v) { h = FnvMix64(h, v); };
    for (const int64_t v : Probe(e)) {
      mix(static_cast<uint64_t>(v));
    }
    uint64_t extra = e.MmapAnon(2 * kPageSize, /*populate=*/true);
    mix(extra);
    mix(static_cast<uint64_t>(e.UserTouch(extra, /*write=*/true)));
    mix(e.kernel().total_page_faults());
    return h;
  };
  const uint64_t want = workload_hash(bed.engine());

  SimCluster cluster(ClusterConfig{.shards = 2, .threads = 2, .root_seed = 7});
  ClusterResult result = cluster.Run([&img, &workload_hash, want](const ShardTask& task) {
    ShardResult shard;
    shard.index = task.index;
    Machine machine(MachineConfigFor(RuntimeKind::kCki, Deployment::kBareMetal));
    RestoreOutcome out = RestoreContainer(machine, img);
    if (!out.ok) {
      shard.ok = false;
      shard.error = "restore failed";
      return shard;
    }
    uint64_t h = workload_hash(*out.engine);
    shard.HashMix(h);
    shard.ok = h == want;
    if (!shard.ok) {
      shard.error = "workload hash diverged after migration";
    }
    return shard;
  });
  EXPECT_TRUE(result.all_ok());
  ASSERT_EQ(result.shard_count(), 2u);
  EXPECT_EQ(result.shards()[0].trace_hash(), result.shards()[1].trace_hash());
}

}  // namespace
}  // namespace cki
