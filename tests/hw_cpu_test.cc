// Unit tests for the CPU core: permission checks, protection keys, A/D
// bits, two-stage translation, interrupt delivery and the CKI extensions.
#include <gtest/gtest.h>

#include "src/hw/cpu.h"
#include "src/hw/pks.h"
#include "src/sim/context.h"

namespace cki {
namespace {

class CpuTest : public ::testing::Test {
 protected:
  CpuTest() : cpu_(ctx_, mem_, CkiHwExtensions::All()), next_frame_(0x10'0000) {
    root_ = AllocFrame();
    cpu_.LoadCr3(MakeCr3(root_, /*pcid=*/1));
  }

  uint64_t AllocFrame() {
    uint64_t pa = next_frame_;
    next_frame_ += kPageSize;
    mem_.InstallFrame(pa);
    return pa;
  }

  void Map(uint64_t va, uint64_t pa, uint64_t flags, uint32_t pkey = 0) {
    PageTableEditor editor(mem_, [this](int) { return AllocFrame(); },
                           [this](uint64_t pte_pa, uint64_t value, int, uint64_t) {
                             mem_.WriteU64(pte_pa, value);
                             return true;
                           });
    ASSERT_TRUE(editor.MapPage(root_, va, pa, flags, pkey, PageSize::k4K));
  }

  SimContext ctx_;
  PhysMem mem_;
  Cpu cpu_;
  uint64_t next_frame_;
  uint64_t root_ = 0;
};

TEST_F(CpuTest, TranslatesMappedPage) {
  uint64_t pa = AllocFrame();
  Map(0x40'0000, pa, kPteP | kPteW | kPteU);
  cpu_.set_cpl(Cpl::kUser);
  uint64_t out = 0;
  EXPECT_TRUE(cpu_.AccessTranslate(0x40'0123, AccessIntent::Read(), &out).ok());
  EXPECT_EQ(out, pa + 0x123);
}

TEST_F(CpuTest, UnmappedPageFaults) {
  cpu_.set_cpl(Cpl::kUser);
  Fault f = cpu_.Access(0x99'9000, AccessIntent::Read());
  EXPECT_EQ(f.type, FaultType::kPageNotPresent);
  EXPECT_EQ(f.va, 0x99'9000u);
  EXPECT_TRUE(f.was_user);
}

TEST_F(CpuTest, UserCannotTouchSupervisorPage) {
  Map(0x50'0000, AllocFrame(), kPteP | kPteW);  // U=0
  cpu_.set_cpl(Cpl::kUser);
  EXPECT_EQ(cpu_.Access(0x50'0000, AccessIntent::Read()).type, FaultType::kPageProtection);
  cpu_.set_cpl(Cpl::kKernel);
  EXPECT_TRUE(cpu_.Access(0x50'0000, AccessIntent::Read()).ok());
}

TEST_F(CpuTest, WriteToReadOnlyFaults) {
  Map(0x60'0000, AllocFrame(), kPteP | kPteU);
  cpu_.set_cpl(Cpl::kUser);
  EXPECT_TRUE(cpu_.Access(0x60'0000, AccessIntent::Read()).ok());
  Fault f = cpu_.Access(0x60'0000, AccessIntent::Write());
  EXPECT_EQ(f.type, FaultType::kPageProtection);
  EXPECT_TRUE(f.was_write);
}

TEST_F(CpuTest, NxBlocksExecution) {
  Map(0x70'0000, AllocFrame(), kPteP | kPteU | kPteNx);
  cpu_.set_cpl(Cpl::kUser);
  EXPECT_TRUE(cpu_.Access(0x70'0000, AccessIntent::Read()).ok());
  EXPECT_EQ(cpu_.Access(0x70'0000, AccessIntent::Exec()).type, FaultType::kPageProtection);
}

TEST_F(CpuTest, PksGovernsSupervisorPages) {
  Map(0x80'0000, AllocFrame(), kPteP | kPteW, kPkeyKsm);  // supervisor, key 1
  cpu_.set_cpl(Cpl::kKernel);
  cpu_.SetPkrsDirect(kPkrsGuest);
  EXPECT_EQ(cpu_.Access(0x80'0000, AccessIntent::Read()).type, FaultType::kPageKeyViolation);
  cpu_.SetPkrsDirect(0);
  EXPECT_TRUE(cpu_.Access(0x80'0000, AccessIntent::Read()).ok());
}

TEST_F(CpuTest, PksWriteDisableAllowsReads) {
  Map(0x81'0000, AllocFrame(), kPteP | kPteW, kPkeyPtp);  // supervisor, key 2
  cpu_.set_cpl(Cpl::kKernel);
  cpu_.SetPkrsDirect(kPkrsGuest);  // key 2: write-disable
  EXPECT_TRUE(cpu_.Access(0x81'0000, AccessIntent::Read()).ok());
  EXPECT_EQ(cpu_.Access(0x81'0000, AccessIntent::Write()).type, FaultType::kPageKeyViolation);
  cpu_.SetPkrsDirect(0);
}

TEST_F(CpuTest, PkuGovernsUserPages) {
  Map(0x82'0000, AllocFrame(), kPteP | kPteW | kPteU, /*pkey=*/3);
  cpu_.set_cpl(Cpl::kUser);
  cpu_.set_pkru(PkAccessDisable(3));
  EXPECT_EQ(cpu_.Access(0x82'0000, AccessIntent::Read()).type, FaultType::kPageKeyViolation);
  cpu_.set_pkru(0);
  EXPECT_TRUE(cpu_.Access(0x82'0000, AccessIntent::Read()).ok());
}

TEST_F(CpuTest, PkrsDoesNotAffectUserPagesAndViceVersa) {
  Map(0x83'0000, AllocFrame(), kPteP | kPteW | kPteU, /*pkey=*/4);  // user page key 4
  cpu_.set_cpl(Cpl::kKernel);
  cpu_.SetPkrsDirect(PkAccessDisable(4));  // PKS denies key 4...
  EXPECT_TRUE(cpu_.Access(0x83'0000, AccessIntent::Read()).ok())
      << "...but PKU governs user pages";
  cpu_.SetPkrsDirect(0);
}

TEST_F(CpuTest, AccessSetsAccessedAndDirtyBits) {
  uint64_t pa = AllocFrame();
  Map(0x90'0000, pa, kPteP | kPteW | kPteU);
  cpu_.set_cpl(Cpl::kUser);
  ASSERT_TRUE(cpu_.Access(0x90'0000, AccessIntent::Read()).ok());
  WalkResult walk = WalkPageTable(mem_, root_, 0x90'0000);
  EXPECT_TRUE((walk.leaf_pte & kPteA) != 0);
  EXPECT_TRUE((walk.leaf_pte & kPteD) == 0);
  // Writes need a fresh translation to mark D (TLB caches the first one).
  cpu_.tlb().FlushAll();
  ASSERT_TRUE(cpu_.Access(0x90'0000, AccessIntent::Write()).ok());
  walk = WalkPageTable(mem_, root_, 0x90'0000);
  EXPECT_TRUE((walk.leaf_pte & kPteD) != 0);
}

TEST_F(CpuTest, TlbCachesTranslations) {
  Map(0xA0'0000, AllocFrame(), kPteP | kPteU);
  cpu_.set_cpl(Cpl::kUser);
  auto before = ctx_.trace().Snapshot();
  ASSERT_TRUE(cpu_.Access(0xA0'0000, AccessIntent::Read()).ok());
  ASSERT_TRUE(cpu_.Access(0xA0'0000, AccessIntent::Read()).ok());
  EXPECT_EQ(CountDelta(before, ctx_.trace(), PathEvent::kTlbMiss), 1u);
  EXPECT_EQ(CountDelta(before, ctx_.trace(), PathEvent::kTlbHit), 1u);
}

TEST_F(CpuTest, TwoStageTranslationThroughEpt) {
  // Build a tiny guest: guest tables live at gPAs, EPT maps gPA -> hPA.
  PhysMem& mem = mem_;
  Ept ept(mem, [this](int) { return AllocFrame(); });
  // Identity-ish backing: gPA 0x1000 (guest root) -> fresh host frame, etc.
  uint64_t root_h = AllocFrame();
  ASSERT_TRUE(ept.Map(0x1000, root_h, PageSize::k4K));
  uint64_t pt_h[3];
  for (int i = 0; i < 3; ++i) {
    pt_h[i] = AllocFrame();
    ASSERT_TRUE(ept.Map(0x2000 + static_cast<uint64_t>(i) * 0x1000, pt_h[i], PageSize::k4K));
  }
  uint64_t data_h = AllocFrame();
  ASSERT_TRUE(ept.Map(0x9000, data_h, PageSize::k4K));

  // Guest page table (entries hold gPAs), written through the backing.
  uint64_t va = 0x40'0000;
  mem.WriteU64(root_h + static_cast<uint64_t>(PtIndex(va, 4)) * 8, MakePte(0x2000, kPteP | kPteU));
  mem.WriteU64(pt_h[0] + static_cast<uint64_t>(PtIndex(va, 3)) * 8,
               MakePte(0x3000, kPteP | kPteU));
  mem.WriteU64(pt_h[1] + static_cast<uint64_t>(PtIndex(va, 2)) * 8,
               MakePte(0x4000, kPteP | kPteU));
  mem.WriteU64(pt_h[2] + static_cast<uint64_t>(PtIndex(va, 1)) * 8,
               MakePte(0x9000, kPteP | kPteU));

  cpu_.set_ept(&ept);
  cpu_.LoadCr3(MakeCr3(0x1000, 2));
  cpu_.set_cpl(Cpl::kUser);
  uint64_t out = 0;
  Fault f = cpu_.AccessTranslate(va + 0x44, AccessIntent::Read(), &out);
  ASSERT_TRUE(f.ok()) << FaultTypeName(f.type);
  EXPECT_EQ(out, data_h + 0x44);
  // Unbacked gPA: EPT violation reported with the guest-physical address.
  mem.WriteU64(pt_h[2] + static_cast<uint64_t>(PtIndex(va + kPageSize, 1)) * 8,
               MakePte(0xB000, kPteP | kPteU));
  cpu_.tlb().FlushAll();
  f = cpu_.Access(va + kPageSize, AccessIntent::Read());
  EXPECT_EQ(f.type, FaultType::kEptViolation);
  EXPECT_EQ(f.va, 0xB000u);
  cpu_.set_ept(nullptr);
}

TEST_F(CpuTest, TwoDimensionalWalkChargesMoreTime) {
  // Identical mapping, once with and once without an EPT: the 2-D walk
  // must cost walk_refs_2d vs walk_refs_1d.
  const CostModel& c = ctx_.cost();
  EXPECT_GT(c.WalkCost(true), c.WalkCost(false));
  EXPECT_EQ(c.WalkCost(true), static_cast<SimNanos>(c.walk_refs_2d) * c.walk_mem_ref);
}

TEST_F(CpuTest, InterruptDeliveryHonorsIdt) {
  Idt idt;
  idt.SetGate(kVecTimer, IdtGate{.present = true, .handler_tag = 42, .ist_index = 0});
  cpu_.set_idt(&idt);
  InterruptEntry entry = cpu_.DeliverInterrupt(kVecTimer, true);
  EXPECT_TRUE(entry.fault.ok());
  EXPECT_EQ(entry.handler_tag, 42u);
  EXPECT_EQ(cpu_.cpl(), Cpl::kKernel);
  EXPECT_FALSE(cpu_.interrupts_enabled());
  // Missing gate: triple fault.
  EXPECT_EQ(cpu_.DeliverInterrupt(kVecVirtioBlk, true).fault.type, FaultType::kTripleFault);
}

TEST_F(CpuTest, IdtPksSwitchOnlyOnHardwareInterrupts) {
  Idt idt;
  idt.SetGate(kVecTimer,
              IdtGate{.present = true, .handler_tag = 1, .ist_index = 0, .pks_switch = true});
  cpu_.set_idt(&idt);
  cpu_.SetPkrsDirect(kPkrsGuest);
  InterruptEntry hw = cpu_.DeliverInterrupt(kVecTimer, /*hardware=*/true);
  EXPECT_TRUE(hw.pks_switched);
  EXPECT_EQ(cpu_.pkrs(), 0u);
  EXPECT_EQ(hw.saved_pkrs, kPkrsGuest);
  cpu_.SetPkrsDirect(kPkrsGuest);
  InterruptEntry sw = cpu_.DeliverInterrupt(kVecTimer, /*hardware=*/false);
  EXPECT_FALSE(sw.pks_switched);
  EXPECT_EQ(cpu_.pkrs(), kPkrsGuest);
}

TEST_F(CpuTest, IretRestoresPkrsWithExtension) {
  cpu_.SetPkrsDirect(0);
  cpu_.IretTrusted(Cpl::kUser, kPkrsGuest);
  EXPECT_EQ(cpu_.pkrs(), kPkrsGuest);
  EXPECT_EQ(cpu_.cpl(), Cpl::kUser);
  EXPECT_TRUE(cpu_.interrupts_enabled());
}

TEST_F(CpuTest, SwapgsExchangesBases) {
  cpu_.set_cpl(Cpl::kKernel);
  cpu_.SetPkrsDirect(0);
  cpu_.set_kernel_gs_base(0x1234);
  ASSERT_TRUE(cpu_.Swapgs().ok());
  EXPECT_EQ(cpu_.gs_base(), 0x1234u);
  EXPECT_EQ(cpu_.kernel_gs_base(), 0u);
}

TEST_F(CpuTest, WrpkrsChargesPksSwitchCost) {
  cpu_.set_cpl(Cpl::kKernel);
  SimNanos before = ctx_.clock().now();
  ASSERT_TRUE(cpu_.Wrpkrs(kPkrsGuest).ok());
  EXPECT_EQ(ctx_.clock().now() - before, ctx_.cost().pks_switch);
  EXPECT_EQ(cpu_.pkrs(), kPkrsGuest);
  cpu_.SetPkrsDirect(0);
}

}  // namespace
}  // namespace cki
