// Hardware-visibility consistency properties: after arbitrary touch/
// mprotect churn, what the CPU translates through the *hardware* tables
// must agree exactly with a simple model of the guest kernel's view, under
// every design (shadow tables and per-vCPU copies included). This is the
// integration property that shadow-sync and copy-mirroring bugs break.
#include <gtest/gtest.h>

#include <map>

#include "src/runtime/runtime.h"
#include "src/sim/rng.h"

namespace cki {
namespace {

struct Param {
  RuntimeKind kind;
  uint64_t seed;
};

class TableConsistencyTest : public ::testing::TestWithParam<Param> {};

TEST_P(TableConsistencyTest, HardwareViewMatchesModelAfterChurn) {
  Testbed bed(GetParam().kind, Deployment::kBareMetal);
  ContainerEngine& engine = bed.engine();
  Rng rng(GetParam().seed);

  constexpr int kPages = 48;
  uint64_t arena = engine.MmapAnon(kPages * kPageSize, false);

  // Model: per page, the VMA protection and whether it has been faulted in.
  std::map<int, bool> vma_writable;  // default true (RW arena)
  std::map<int, bool> present;
  auto writable = [&](int page) {
    auto it = vma_writable.find(page);
    return it == vma_writable.end() ? true : it->second;
  };

  for (int step = 0; step < 800; ++step) {
    int page = static_cast<int>(rng.NextBelow(kPages));
    uint64_t va = arena + static_cast<uint64_t>(page) * kPageSize +
                  rng.NextBelow(kPageSize - 8);
    switch (rng.NextBelow(3)) {
      case 0: {  // read
        EXPECT_EQ(engine.UserTouch(va, false), TouchResult::kOk)
            << "read, page " << page << " step " << step;
        present[page] = true;
        break;
      }
      case 1: {  // write
        bool expect_ok = writable(page);
        EXPECT_EQ(engine.UserTouch(va, true) == TouchResult::kOk, expect_ok)
            << "write, page " << page << " step " << step;
        if (expect_ok) {
          present[page] = true;
        }
        break;
      }
      case 2: {  // mprotect toggle
        bool w = rng.NextBool(0.5);
        ASSERT_TRUE(engine
                        .UserSyscall(SyscallRequest{
                            .no = Sys::kMprotect,
                            .arg0 = arena + static_cast<uint64_t>(page) * kPageSize,
                            .arg1 = kPageSize,
                            .arg2 = w ? (kProtRead | kProtWrite) : kProtRead})
                        .ok());
        vma_writable[page] = w;
        break;
      }
    }
  }

  // Final sweep: the hardware MMU must agree with the model everywhere.
  for (int page = 0; page < kPages; ++page) {
    uint64_t va = arena + static_cast<uint64_t>(page) * kPageSize;
    EXPECT_EQ(engine.UserTouch(va, false), TouchResult::kOk) << "final read " << page;
    EXPECT_EQ(engine.UserTouch(va, true) == TouchResult::kOk, writable(page))
        << "final write " << page;
  }
}

INSTANTIATE_TEST_SUITE_P(
    EnginesAndSeeds, TableConsistencyTest,
    ::testing::Values(Param{RuntimeKind::kRunc, 1}, Param{RuntimeKind::kHvm, 2},
                      Param{RuntimeKind::kPvm, 3}, Param{RuntimeKind::kCki, 4},
                      Param{RuntimeKind::kPvm, 55}, Param{RuntimeKind::kCki, 66},
                      Param{RuntimeKind::kGvisor, 7}, Param{RuntimeKind::kLibOs, 8}),
    [](const ::testing::TestParamInfo<Param>& param_info) {
      return std::string(RuntimeKindName(param_info.param.kind)) + "_" +
             std::to_string(param_info.param.seed);
    });

}  // namespace
}  // namespace cki
