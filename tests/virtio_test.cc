// Tests for the virtio-net device model: queue semantics, batching,
// kick/interrupt accounting, and per-design cost ordering.
#include <gtest/gtest.h>

#include "src/host/virtio.h"
#include "src/runtime/runtime.h"

namespace cki {
namespace {

TEST(VirtioTest, RequestsFlowClientToGuestAndBack) {
  Testbed bed(RuntimeKind::kRunc, Deployment::kBareMetal);
  VirtioNetAdapter adapter(bed.engine(), /*tx_batch=*/1);
  adapter.ClientSubmitBatch(1, 3, 500);
  EXPECT_TRUE(adapter.HasPending());
  EXPECT_EQ(adapter.Receive(1, 500), 500u);
  EXPECT_EQ(adapter.Receive(1, 500), 500u);
  EXPECT_EQ(adapter.Transmit(1, 500), 500u);
  EXPECT_EQ(adapter.Transmit(1, 500), 500u);
  EXPECT_EQ(adapter.ClientCollect(1), 2u);
  EXPECT_EQ(adapter.Receive(1, 500), 500u);
  EXPECT_FALSE(adapter.HasPending());
  EXPECT_EQ(adapter.Receive(1, 500), 0u);
}

TEST(VirtioTest, OneInterruptPerSubmittedBatch) {
  Testbed bed(RuntimeKind::kRunc, Deployment::kBareMetal);
  VirtioNetAdapter adapter(bed.engine(), 1);
  adapter.ClientSubmitBatch(1, 8, 100);
  adapter.ClientSubmitBatch(1, 8, 100);
  EXPECT_EQ(adapter.stats().interrupts, 2u);
  EXPECT_EQ(adapter.stats().rx_requests, 16u);
}

TEST(VirtioTest, TxBatchingAmortizesKicks) {
  Testbed bed(RuntimeKind::kRunc, Deployment::kBareMetal);
  VirtioNetAdapter adapter(bed.engine(), /*tx_batch=*/4);
  for (int i = 0; i < 8; ++i) {
    adapter.Transmit(1, 100);
  }
  EXPECT_EQ(adapter.stats().kicks, 2u);
}

TEST(VirtioTest, ReceiveTruncatesToBuffer) {
  Testbed bed(RuntimeKind::kRunc, Deployment::kBareMetal);
  VirtioNetAdapter adapter(bed.engine(), 1);
  adapter.ClientSubmitBatch(1, 1, 1000);
  EXPECT_EQ(adapter.Receive(1, 400), 400u);
}

TEST(VirtioTest, FlushDeliversTailBelowBatch) {
  Testbed bed(RuntimeKind::kRunc, Deployment::kBareMetal);
  VirtioNetAdapter adapter(bed.engine(), /*tx_batch=*/4);
  for (int i = 0; i < 3; ++i) {
    adapter.Transmit(1, 100);
  }
  // Below the batch threshold: nothing reached the wire yet.
  EXPECT_EQ(adapter.stats().kicks, 0u);
  EXPECT_EQ(adapter.ClientCollect(1), 0u);
  adapter.Flush();
  EXPECT_EQ(adapter.stats().kicks, 1u);
  EXPECT_EQ(adapter.ClientCollect(1), 3u);
}

TEST(VirtioTest, LoweringTxBatchFlushesStrandedFrames) {
  Testbed bed(RuntimeKind::kRunc, Deployment::kBareMetal);
  VirtioNetAdapter adapter(bed.engine(), /*tx_batch=*/8);
  for (int i = 0; i < 5; ++i) {
    adapter.Transmit(1, 100);
  }
  EXPECT_EQ(adapter.stats().kicks, 0u);
  // Lowering the threshold below the buffered count must kick immediately
  // instead of stranding the frames behind the new, already-passed mark.
  adapter.set_tx_batch(2);
  EXPECT_EQ(adapter.stats().kicks, 1u);
  EXPECT_EQ(adapter.ClientCollect(1), 5u);
}

TEST(VirtioTest, KickCostOrderingMatchesDesigns) {
  // CKI's hypercall kick < PVM's host round trip < HVM-BM's VM exit <<
  // HVM-NST's L0-mediated exit.
  Testbed cki_bed(RuntimeKind::kCki, Deployment::kBareMetal);
  Testbed pvm_bed(RuntimeKind::kPvm, Deployment::kBareMetal);
  Testbed hvm_bm(RuntimeKind::kHvm, Deployment::kBareMetal);
  Testbed hvm_nst(RuntimeKind::kHvm, Deployment::kNested);
  EXPECT_LT(cki_bed.engine().KickCost(), pvm_bed.engine().KickCost());
  EXPECT_LT(pvm_bed.engine().KickCost(), hvm_bm.engine().KickCost());
  EXPECT_LT(hvm_bm.engine().KickCost(), hvm_nst.engine().KickCost() / 4);
}

TEST(VirtioTest, CkiKickCostIsIndependentOfNesting) {
  Testbed bm(RuntimeKind::kCki, Deployment::kBareMetal);
  Testbed nst(RuntimeKind::kCki, Deployment::kNested);
  EXPECT_EQ(bm.engine().KickCost(), nst.engine().KickCost());
  EXPECT_EQ(bm.engine().DeviceInterruptCost(), nst.engine().DeviceInterruptCost());
}

TEST(VirtioTest, RuncHasNoVirtualizationTax) {
  Testbed bed(RuntimeKind::kRunc, Deployment::kBareMetal);
  EXPECT_EQ(bed.engine().KickCost(), 0u);
  EXPECT_EQ(bed.engine().VirtioEmulationExtra(), 0u);
}

}  // namespace
}  // namespace cki
