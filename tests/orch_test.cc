// Tests for the deterministic cluster orchestrator (src/orch): policy
// purity, cross-thread-count hash identity, chaos re-placement with zero
// frame leaks, autoscale/reap/migration dynamics, and snapshot hashing.
#include <gtest/gtest.h>

#include "src/orch/orchestrator.h"
#include "src/orch/policy.h"

namespace cki {
namespace {

// Small fleet that still exercises every control path quickly.
OrchConfig SmallConfig() {
  OrchConfig cfg;
  cfg.shards = 4;
  cfg.threads = 1;
  cfg.root_seed = 11;
  cfg.epochs = 24;
  cfg.epoch_ns = 1'000'000;
  cfg.initial_containers = 2;
  cfg.arrivals = ArrivalConfig::DiurnalBurst(/*seed=*/0, /*base_rate_per_sec=*/40'000);
  return cfg;
}

// --- policy purity --------------------------------------------------------

ClusterSnapshot SyntheticSnapshot() {
  ClusterSnapshot snap;
  snap.epoch = 7;
  snap.epoch_ns = 1'000'000;
  snap.slo_p99_ns = 400'000;
  for (uint32_t i = 0; i < 3; ++i) {
    ShardSignal s;
    s.index = i;
    s.up = true;
    s.has_template = true;
    for (uint32_t c = 0; c < 2; ++c) {
      ContainerSignal cs;
      cs.shard = i;
      cs.id = c + 2;
      cs.window_ops = 100 * (c + 1);
      snap.shards.push_back(ShardSignal{});
      snap.shards.pop_back();
      s.containers.push_back(cs);
    }
    snap.shards.push_back(s);
  }
  return snap;
}

TEST(OrchPolicyTest, DecideIsPureAndOrdered) {
  ClusterSnapshot snap = SyntheticSnapshot();
  ReactivePolicy policy(ReactiveConfig{});
  std::vector<OrchAction> a = policy.Decide(snap);
  std::vector<OrchAction> b = policy.Decide(snap);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].shard, b[i].shard);
    EXPECT_EQ(a[i].container, b[i].container);
  }
  for (size_t i = 1; i < a.size(); ++i) {
    EXPECT_LE(a[i - 1].shard, a[i].shard);
  }
  EXPECT_EQ(snap.Hash(), SyntheticSnapshot().Hash());
}

TEST(OrchPolicyTest, StaticPolicyRefillsToTarget) {
  ClusterSnapshot snap = SyntheticSnapshot();
  snap.shards[1].containers.clear();  // shard 1 lost everything
  StaticPolicy policy(2);
  std::vector<OrchAction> actions = policy.Decide(snap);
  ASSERT_EQ(actions.size(), 2u);
  for (const OrchAction& a : actions) {
    EXPECT_EQ(a.kind, OrchActionKind::kScaleUp);
    EXPECT_EQ(a.shard, 1u);
  }
}

TEST(OrchPolicyTest, ReactiveReapsIdleAndGrowsHotShards) {
  ClusterSnapshot snap = SyntheticSnapshot();
  ReactiveConfig rc;
  rc.min_containers = 1;
  rc.max_containers = 2;
  rc.reap_idle_epochs = 3;
  // Shard 0: quiet with one long-idle container -> reap.
  snap.shards[0].containers[1].idle_epochs = 5;
  // Shard 1: missing its SLO but already at max -> migrate, not grow.
  snap.shards[1].epoch_p99_ns = 900'000;
  // Shard 2: missing its SLO below max after we drop one container.
  snap.shards[2].epoch_p99_ns = 900'000;
  snap.shards[2].containers.pop_back();
  ReactivePolicy policy(rc);
  std::vector<OrchAction> actions = policy.Decide(snap);

  bool reaped_idle = false, migrated_off_1 = false, grew_2 = false;
  for (const OrchAction& a : actions) {
    reaped_idle |= a.kind == OrchActionKind::kReap && a.shard == 0 &&
                   a.container == snap.shards[0].containers[1].id;
    migrated_off_1 |= a.kind == OrchActionKind::kMigrate && a.shard == 1;
    grew_2 |= a.kind == OrchActionKind::kScaleUp && a.shard == 2;
  }
  EXPECT_TRUE(reaped_idle);
  EXPECT_TRUE(migrated_off_1);
  EXPECT_TRUE(grew_2);
}

TEST(OrchPolicyTest, SnapshotHashCoversContainerState) {
  ClusterSnapshot a = SyntheticSnapshot();
  ClusterSnapshot b = SyntheticSnapshot();
  EXPECT_EQ(a.Hash(), b.Hash());
  b.shards[2].containers[0].idle_epochs++;
  EXPECT_NE(a.Hash(), b.Hash());
  b = SyntheticSnapshot();
  b.shards[0].up = false;
  EXPECT_NE(a.Hash(), b.Hash());
}

// --- orchestrated runs ----------------------------------------------------

TEST(OrchestratorTest, HashesAndStatsIdenticalAtAnyThreadCount) {
  ReactivePolicy policy(ReactiveConfig{});
  OrchConfig cfg = SmallConfig();
  cfg.machine_kill_rate = 0.03;
  cfg.container_kill_rate = 0.05;
  cfg.shard_load_skew = 0.5;

  uint64_t want_hash = 0;
  OrchStats want{};
  for (uint32_t threads : {1u, 2u, 8u}) {
    cfg.threads = threads;
    Orchestrator orch(cfg, policy);
    OrchStats got = orch.Run();
    if (threads == 1) {
      want_hash = orch.CombinedHash();
      want = got;
      continue;
    }
    EXPECT_EQ(orch.CombinedHash(), want_hash) << "threads=" << threads;
    EXPECT_EQ(got.requests, want.requests);
    EXPECT_EQ(got.served, want.served);
    EXPECT_EQ(got.lost, want.lost);
    EXPECT_EQ(got.epochs_slo_met, want.epochs_slo_met);
    EXPECT_EQ(got.overall_p99_ns, want.overall_p99_ns);
    EXPECT_EQ(got.migrations, want.migrations);
    EXPECT_EQ(got.clones, want.clones);
    EXPECT_EQ(got.reaps, want.reaps);
    EXPECT_EQ(got.machine_kills, want.machine_kills);
    EXPECT_EQ(got.container_kills, want.container_kills);
  }
}

TEST(OrchestratorTest, ChaosVictimsAreReplacedWithoutFrameLeaks) {
  ReactivePolicy policy(ReactiveConfig{});
  OrchConfig cfg = SmallConfig();
  cfg.epochs = 40;
  cfg.machine_kill_rate = 0.05;
  cfg.container_kill_rate = 0.10;
  Orchestrator orch(cfg, policy);
  OrchStats stats = orch.Run();

  EXPECT_GT(stats.machine_kills, 0u);
  EXPECT_GT(stats.container_kills, 0u);
  EXPECT_GT(stats.replacements, 0u);  // the policy refilled killed capacity
  EXPECT_EQ(stats.leaked_frames, 0u);
  EXPECT_GT(stats.served, 0u);
  // Traffic never stops: every minted arrival is either served or
  // accounted lost, and the loop keeps meeting the SLO between strikes.
  EXPECT_EQ(stats.requests, stats.served + stats.lost);
  EXPECT_GT(stats.epochs_slo_met, 0u);
}

TEST(OrchestratorTest, SkewDrivesMigrationsOffHotShards) {
  ReactiveConfig rc;
  rc.max_containers = 2;  // hot shards saturate quickly and must migrate
  rc.capacity_ops_per_sec = 30'000;
  ReactivePolicy policy(rc);
  OrchConfig cfg = SmallConfig();
  cfg.epochs = 32;
  cfg.shard_load_skew = 1.0;  // shard 3 runs at 4x shard 0's rate
  // Start below the cap so quiet shards keep room for incoming moves:
  // the hot shard fills to max_containers, stays hot, and must migrate.
  cfg.initial_containers = 1;
  cfg.arrivals = ArrivalConfig::DiurnalBurst(/*seed=*/0, /*base_rate_per_sec=*/60'000);
  Orchestrator orch(cfg, policy);
  OrchStats stats = orch.Run();
  EXPECT_GT(stats.migrations, 0u);
  EXPECT_EQ(stats.leaked_frames, 0u);
  // Live migration preserved service: the moved containers keep serving.
  EXPECT_GT(stats.served, 0u);
}

TEST(OrchestratorTest, QuietPhaseReapsIdleContainersAndRecovers) {
  ReactiveConfig rc;
  rc.reap_idle_epochs = 3;
  ReactivePolicy policy(rc);
  OrchConfig cfg = SmallConfig();
  cfg.epochs = 48;
  cfg.initial_containers = 3;
  // Half the "day" is dead silence: containers go idle, get reaped, and
  // capacity must come back when traffic returns.
  cfg.arrivals.diurnal = {1.0, 0.0};
  cfg.arrivals.diurnal_period_ns = 32 * cfg.epoch_ns;
  cfg.arrivals.burst.clear();
  Orchestrator orch(cfg, policy);
  OrchStats stats = orch.Run();
  EXPECT_GT(stats.reaps, 0u);
  EXPECT_EQ(stats.leaked_frames, 0u);
  EXPECT_GT(stats.served, 0u);
  // The last snapshot is from the busy tail of the run: the fleet scaled
  // back up to at least the policy minimum everywhere.
  for (const ShardSignal& s : orch.last_snapshot().shards) {
    if (s.up) {
      EXPECT_GE(s.containers.size(), rc.min_containers);
    }
  }
}

TEST(OrchestratorTest, StaticBaselineNeverMigratesOrReaps) {
  StaticPolicy policy(2);
  OrchConfig cfg = SmallConfig();
  cfg.machine_kill_rate = 0.05;
  Orchestrator orch(cfg, policy);
  OrchStats stats = orch.Run();
  EXPECT_EQ(stats.migrations, 0u);
  EXPECT_EQ(stats.reaps, 0u);
  EXPECT_EQ(stats.leaked_frames, 0u);
  EXPECT_GT(stats.served, 0u);
}

// --- gray failures + request resilience (DESIGN.md §13) -------------------

// SmallConfig plus gray chaos on every site, hot enough that episodes
// overlap and the health score has time to sink below any drain threshold.
OrchConfig GrayChaosConfig() {
  OrchConfig cfg = SmallConfig();
  cfg.epochs = 32;
  cfg.latency_inflation_rate = 0.15;
  cfg.throughput_throttle_rate = 0.05;
  cfg.packet_blackhole_rate = 0.10;
  cfg.syscall_jitter_rate = 0.10;
  return cfg;
}

TEST(OrchPolicyTest, GrayShardDrainsAndIsNeverADestination) {
  ClusterSnapshot snap = SyntheticSnapshot();
  ReactiveConfig rc;
  rc.gray_health_x1000 = 600;
  rc.drain_per_epoch = 1;
  snap.shards[1].health_x1000 = 300;  // alive, but probing 3x slow
  ReactivePolicy policy(rc);

  std::vector<OrchAction> actions = policy.Decide(snap);
  int drains = 0;
  for (const OrchAction& a : actions) {
    if (a.kind == OrchActionKind::kDrain) {
      drains++;
      EXPECT_EQ(a.shard, 1u);
      EXPECT_NE(a.dst_shard, 1u);
      EXPECT_GE(snap.shards[a.dst_shard].health_x1000, rc.gray_health_x1000);
    }
    // A gray shard gets no new capacity and donates no migrations —
    // draining it is the only action it participates in.
    EXPECT_FALSE(a.kind == OrchActionKind::kScaleUp && a.shard == 1);
  }
  EXPECT_EQ(drains, 1);

  // Even a hot gray shard is shrunk, not grown.
  snap.shards[1].epoch_p99_ns = 900'000;
  for (const OrchAction& a : policy.Decide(snap)) {
    EXPECT_FALSE(a.kind == OrchActionKind::kScaleUp && a.shard == 1);
  }

  // Below the threshold the same shard is healthy again: no drains.
  snap.shards[1].epoch_p99_ns = 0;
  snap.shards[1].health_x1000 = 650;
  for (const OrchAction& a : policy.Decide(snap)) {
    EXPECT_NE(a.kind, OrchActionKind::kDrain);
  }
}

TEST(OrchestratorTest, ResilienceRecoversWhatGrayChaosSwallows) {
  // Control arm: same gray chaos, every defense off. Blackholed requests
  // are simply lost and nothing retries, hedges, sheds, or probes back.
  OrchConfig off_cfg = GrayChaosConfig();
  off_cfg.resil.enabled = false;
  ReactivePolicy off_policy(ReactiveConfig{});
  Orchestrator off_orch(off_cfg, off_policy);
  OrchStats off = off_orch.Run();
  EXPECT_GT(off.gray_episodes, 0u);
  EXPECT_GT(off.blackholed, 0u);
  EXPECT_GT(off.lost, 0u);
  EXPECT_EQ(off.retries, 0u);
  EXPECT_EQ(off.hedges, 0u);
  EXPECT_EQ(off.sheds, 0u);
  EXPECT_EQ(off.requests, off.served + off.lost);

  // Treatment arm: identical seeds and chaos, resilience on, gray-aware
  // policy. Retries paid from the budget recover blackholed attempts.
  OrchConfig on_cfg = GrayChaosConfig();
  ReactiveConfig rc;
  rc.gray_health_x1000 = 700;
  ReactivePolicy on_policy(rc);
  Orchestrator on_orch(on_cfg, on_policy);
  OrchStats on = on_orch.Run();
  EXPECT_GT(on.retries, 0u);
  EXPECT_GT(on.probes, 0u);
  EXPECT_LT(on.lost, off.lost);
  EXPECT_EQ(on.leaked_frames, 0u);
  EXPECT_EQ(on.requests, on.served + on.lost);
  // The retry volume respects the token bucket: never more than the
  // per-shard caps plus the ratio-metered refill.
  const ResilConfig& resil = on_cfg.resil;
  EXPECT_LE(on.retries, static_cast<uint64_t>(resil.retry_budget_cap) * on_cfg.shards +
                            static_cast<uint64_t>(resil.retry_budget_ratio *
                                                  static_cast<double>(on.served)) +
                            1);
}

TEST(OrchestratorTest, GrayResilienceHashesIdenticalAtAnyThreadCount) {
  // The whole resilience layer — gray draws, retries, hedge placement,
  // breaker decisions, probes, drains — must stay on the shard-serial
  // timeline: the combined digest cannot move with the worker count.
  ReactiveConfig rc;
  rc.gray_health_x1000 = 700;
  ReactivePolicy policy(rc);
  OrchConfig cfg = GrayChaosConfig();
  cfg.machine_kill_rate = 0.02;
  cfg.shard_load_skew = 0.5;

  uint64_t want_hash = 0;
  OrchStats want{};
  for (uint32_t threads : {1u, 2u, 8u}) {
    cfg.threads = threads;
    Orchestrator orch(cfg, policy);
    OrchStats got = orch.Run();
    if (threads == 1) {
      want_hash = orch.CombinedHash();
      want = got;
      continue;
    }
    EXPECT_EQ(orch.CombinedHash(), want_hash) << "threads=" << threads;
    EXPECT_EQ(got.blackholed, want.blackholed);
    EXPECT_EQ(got.retries, want.retries);
    EXPECT_EQ(got.hedges, want.hedges);
    EXPECT_EQ(got.hedge_wins, want.hedge_wins);
    EXPECT_EQ(got.sheds, want.sheds);
    EXPECT_EQ(got.drains, want.drains);
    EXPECT_EQ(got.breaker_opens, want.breaker_opens);
    EXPECT_EQ(got.served, want.served);
    EXPECT_EQ(got.overall_p99_ns, want.overall_p99_ns);
  }
}

TEST(OrchestratorTest, MetricsCarryRequestLatencies) {
  ReactivePolicy policy(ReactiveConfig{});
  OrchConfig cfg = SmallConfig();
  cfg.epochs = 8;
  Orchestrator orch(cfg, policy);
  OrchStats stats = orch.Run();
  const Histogram* lat = orch.metrics().FindHist("orch/request_latency_ns");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count(), stats.served);
  EXPECT_EQ(orch.metrics().CounterValue("orch/requests_served"), stats.served);
  EXPECT_EQ(stats.overall_p99_ns, lat->Percentile(99));
}

}  // namespace
}  // namespace cki
