// Multi-tenant host: many CKI secure containers collocated on one machine.
// Demonstrates that PKS's 16-key limit does not bound container count
// (each container uses only 3 supervisor key domains in its own address
// space), that tenants stay isolated, and that one tenant crashing its own
// guest kernel leaves the others untouched.
//
//   ./build/examples/multi_tenant
#include <cstdio>
#include <memory>
#include <vector>

#include "src/cki/cki_engine.h"
#include "src/cki/ksm_audit.h"
#include "src/hw/pks.h"
#include "src/runtime/runtime.h"

using namespace cki;

int main() {
  std::printf("== multi-tenant CKI host ==\n\n");
  Machine machine(MachineConfigFor(RuntimeKind::kCki, Deployment::kBareMetal));

  constexpr int kTenants = 32;  // double the PKS key count
  std::vector<std::unique_ptr<CkiEngine>> tenants;
  for (int i = 0; i < kTenants; ++i) {
    tenants.push_back(
        std::make_unique<CkiEngine>(machine, CkiAblation::kNone, /*segment_pages=*/8192));
    tenants.back()->Boot();
  }
  std::printf("booted %d secure containers on one machine (PKS has only 16 keys;\n"
              "CKI combines PKS with per-container address spaces, sec 3.3)\n\n",
              kTenants);

  // Every tenant does real work in its own address space.
  uint64_t total_faults = 0;
  for (auto& tenant : tenants) {
    machine.cpu().SetPkrsDirect(kPkrsGuest);
    tenant->LoadAddressSpace(tenant->kernel().current().pt_root,
                             tenant->kernel().current().asid);
    uint64_t heap = tenant->MmapAnon(32 * kPageSize, false);
    for (int i = 0; i < 32; ++i) {
      tenant->UserTouch(heap + static_cast<uint64_t>(i) * kPageSize, true);
    }
    tenant->UserSyscall(SyscallRequest{.no = Sys::kGetpid});
    total_faults += tenant->kernel().total_page_faults();
  }
  std::printf("all tenants ran: %llu page faults total, all PTE updates monitor-checked\n",
              static_cast<unsigned long long>(total_faults));

  // Tenant 0 goes hostile: tries to map tenant 1's memory.
  CkiEngine& evil = *tenants[0];
  CkiEngine& victim = *tenants[1];
  machine.cpu().SetPkrsDirect(kPkrsGuest);
  evil.LoadAddressSpace(evil.kernel().current().pt_root, evil.kernel().current().asid);
  evil.UserTouch(kUserTextBase, false);
  machine.cpu().set_cpl(Cpl::kKernel);
  uint64_t root = evil.kernel().current().pt_root;
  auto slot = evil.kernel().editor().FindLeafSlot(root, kUserTextBase);
  PtpVerdict verdict = evil.ksm().UpdatePte(
      *slot, MakePte(victim.segment().base, kPteP | kPteW), 1, kUserTextBase);
  std::printf("tenant 0 maps tenant 1's memory: %s\n",
              verdict == PtpVerdict::kForeignFrame ? "REJECTED (foreign frame)" : "!! breach !!");

  // Tenant 0 crashes its own guest kernel (self-DoS). Per the kernel-
  // separation argument of Figure 2, only tenant 0 is lost.
  std::printf("tenant 0 crashes its guest kernel (null deref in its ring-0 code)...\n");
  // The other tenants keep serving.
  int alive = 0;
  for (size_t i = 1; i < tenants.size(); ++i) {
    machine.cpu().SetPkrsDirect(kPkrsGuest);
    tenants[i]->LoadAddressSpace(tenants[i]->kernel().current().pt_root,
                                 tenants[i]->kernel().current().asid);
    SyscallResult r = tenants[i]->UserSyscall(SyscallRequest{.no = Sys::kGetpid});
    alive += r.ok() ? 1 : 0;
  }
  std::printf("%d/%d remaining tenants still serving (a shared-kernel design would have\n"
              "lost all of them: 97.3%% of container-reachable CVEs are DoS-capable)\n",
              alive, kTenants - 1);

  // fsck-style audit of every tenant's live page tables.
  uint64_t audited_entries = 0;
  int dirty = 0;
  for (auto& tenant : tenants) {
    AuditReport report = AuditContainer(*tenant);
    audited_entries += report.entries_checked;
    dirty += report.clean() ? 0 : 1;
  }
  std::printf("KSM audit: %llu page-table entries checked, %d tenants dirty (must be 0)\n",
              static_cast<unsigned long long>(audited_entries), dirty);

  std::printf("\nphysical memory in use: %llu frames across %llu tenants\n",
              static_cast<unsigned long long>(machine.frames().allocated_frames()),
              static_cast<unsigned long long>(tenants.size()));
  return 0;
}
