// Nested-cloud deployment comparison: the same web+cache application stack
// (an nginx-like front end over a memcached-like cache) deployed as a
// secure container inside an IaaS VM, under HVM, PVM and CKI — the paper's
// headline scenario (sections 1, 2.2).
//
//   ./build/examples/nested_cloud
#include <cstdio>
#include <iostream>

#include "src/metrics/report.h"
#include "src/runtime/runtime.h"
#include "src/workloads/io_apps.h"
#include "src/workloads/kv_store.h"
#include "src/workloads/mem_apps.h"

using namespace cki;

int main() {
  std::printf("== deploying the same app stack as a secure container in an IaaS VM ==\n\n");

  const struct {
    const char* label;
    RuntimeKind kind;
  } runtimes[] = {
      {"HVM (Kata-style)", RuntimeKind::kHvm},
      {"PVM (software virt)", RuntimeKind::kPvm},
      {"CKI (this paper)", RuntimeKind::kCki},
  };

  ReportTable table("nested-cloud deployment comparison", "runtime",
                    {"boot-alloc ms", "cache kreq/s", "web req/s", "hypercall ns"});

  for (const auto& rt : runtimes) {
    Testbed bed(rt.kind, Deployment::kNested);

    // Warm-up phase: the app server allocates and initializes its heap —
    // page-fault intensive (like the btree/xsbench init phases).
    SimNanos t0 = bed.ctx().clock().now();
    RunMemApp(bed.engine(), MemAppSpec{.name = "init",
                                       .fresh_pages = 1500,
                                       .churn_ops = 500,
                                       .warm_accesses = 20000,
                                       .work_per_fault = 150,
                                       .work_per_access = 150,
                                       .base_compute_ns = 1000000});
    double boot_ms = static_cast<double>(bed.ctx().clock().now() - t0) * 1e-6;

    // Cache tier: memcached-like under 16 concurrent clients.
    KvResult cache = RunKvBenchmark(
        bed.engine(),
        KvConfig{.kind = KvKind::kMemcached, .clients = 16, .total_requests = 2000});

    // Web tier: nginx-like request serving.
    IoAppSpec web = IoAppSuite()[0];  // nginx(static)
    web.requests = 1000;
    double web_rps = RunIoApp(bed.engine(), web);

    SimNanos h0 = bed.ctx().clock().now();
    bed.engine().GuestHypercall(HypercallOp::kNop);
    double hypercall_ns = static_cast<double>(bed.ctx().clock().now() - h0);

    table.AddRow(rt.label,
                 {boot_ms, cache.requests_per_sec * 1e-3, web_rps, hypercall_ns});
  }

  table.Print(std::cout, 1);
  std::printf(
      "CKI avoids both the L0 exit tax of nested HVM and the redirection/\n"
      "shadow-paging tax of PVM: no VM exits at all, same 390 ns hypercall\n"
      "as on bare metal.\n");
  return 0;
}
