// Quickstart: boot a CKI secure container, run a process, and watch the
// three fast paths (syscall, page fault, hypercall) — and what they cost
// compared with the PVM and HVM container designs.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "src/runtime/runtime.h"

using namespace cki;

int main() {
  std::printf("== CKI quickstart ==\n\n");

  // 1. Boot a CKI secure container on a machine with the CKI hardware
  //    extensions (PKS privileged-instruction gating, wrpkrs, IDT/iret/
  //    sysret extensions).
  Testbed bed(RuntimeKind::kCki, Deployment::kBareMetal);
  ContainerEngine& container = bed.engine();
  std::printf("booted %s container; guest kernel pid %d running\n",
              std::string(container.name()).c_str(), container.kernel().current_pid());

  // 2. The container process allocates memory and touches it: each first
  //    touch demand-faults straight into the deprivileged guest kernel,
  //    whose PTE update is validated by the KSM through a PKS gate.
  uint64_t heap = container.MmapAnon(16 * kPageSize, /*populate=*/false);
  SimNanos t0 = bed.ctx().clock().now();
  for (int i = 0; i < 16; ++i) {
    container.UserTouch(heap + static_cast<uint64_t>(i) * kPageSize, /*write=*/true);
  }
  SimNanos fault_ns = (bed.ctx().clock().now() - t0) / 16;
  std::printf("demand page fault: %llu ns/page (native is ~1000; PVM ~4400; HVM-NST ~32500)\n",
              static_cast<unsigned long long>(fault_ns));

  // 3. Syscalls run at native speed: no host redirection, no page-table
  //    switch, sysret/swapgs directly executable.
  t0 = bed.ctx().clock().now();
  for (int i = 0; i < 100; ++i) {
    container.UserSyscall(SyscallRequest{.no = Sys::kGetpid});
  }
  std::printf("getpid syscall:    %llu ns (native ~90; PVM 336)\n",
              static_cast<unsigned long long>((bed.ctx().clock().now() - t0) / 100));

  // 4. Host services go through the switcher: a fast PKS + CR3 gate that
  //    never involves an L0 hypervisor, even in a nested cloud.
  t0 = bed.ctx().clock().now();
  container.GuestHypercall(HypercallOp::kNop);
  std::printf("empty hypercall:   %llu ns (PVM 466; HVM-BM 1088; HVM-NST 6746)\n",
              static_cast<unsigned long long>(bed.ctx().clock().now() - t0));

  // 5. Ordinary POSIX-ish work inside the container.
  SyscallResult fd = container.UserSyscall(SyscallRequest{.no = Sys::kOpen, .arg0 = 1});
  container.UserSyscall(SyscallRequest{
      .no = Sys::kWrite, .arg0 = static_cast<uint64_t>(fd.value), .arg1 = 4096});
  SyscallResult size = container.UserSyscall(
      SyscallRequest{.no = Sys::kFstat, .arg0 = static_cast<uint64_t>(fd.value)});
  std::printf("wrote a 4 KiB file on tmpfs; fstat reports %lld bytes\n",
              static_cast<long long>(size.value));

  SyscallResult child = container.UserSyscall(SyscallRequest{.no = Sys::kFork});
  std::printf("forked child pid %lld (copy-on-write through monitored PTE updates)\n",
              static_cast<long long>(child.value));
  container.kernel().SwitchTo(static_cast<int>(child.value));
  container.UserSyscall(SyscallRequest{.no = Sys::kExit, .arg0 = 0});
  container.UserSyscall(SyscallRequest{.no = Sys::kWaitpid, .arg0 = 0});

  std::printf("\ntotal simulated time: %.1f us across %llu syscalls, %llu page faults\n",
              static_cast<double>(bed.ctx().clock().now()) / 1000.0,
              static_cast<unsigned long long>(container.kernel().total_syscalls()),
              static_cast<unsigned long long>(container.kernel().total_page_faults()));
  std::printf("events: %llu KSM calls, %llu PKS switches, %llu VM exits (must be 0)\n",
              static_cast<unsigned long long>(bed.ctx().trace().Count(PathEvent::kKsmCall)),
              static_cast<unsigned long long>(bed.ctx().trace().Count(PathEvent::kPksSwitch)),
              static_cast<unsigned long long>(bed.ctx().trace().Count(PathEvent::kVmExit)));
  return 0;
}
