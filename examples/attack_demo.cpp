// Red-team demo: a compromised guest kernel inside a CKI secure container
// walks through the paper's attack catalog (sections 4 and 6) and every
// attempt is stopped by a different mechanism.
//
//   ./build/examples/attack_demo
#include <cstdio>

#include "src/cki/cki_engine.h"
#include "src/hw/pks.h"
#include "src/runtime/runtime.h"

using namespace cki;

namespace {

int g_blocked = 0;
int g_total = 0;

void Report(const char* attack, bool blocked, const char* mechanism) {
  g_total++;
  g_blocked += blocked ? 1 : 0;
  std::printf("  [%s] %-52s <- %s\n", blocked ? "BLOCKED" : "!! BREACH !!", attack, mechanism);
}

}  // namespace

int main() {
  std::printf("== CKI attack demo: the guest kernel has been compromised ==\n\n");
  Testbed bed(RuntimeKind::kCki, Deployment::kBareMetal);
  auto& container = static_cast<CkiEngine&>(bed.engine());
  Cpu& cpu = bed.machine().cpu();
  Ksm& ksm = container.ksm();

  // The attacker controls ring 0 of the container (PKRS = PKRS_GUEST).
  cpu.set_cpl(Cpl::kKernel);
  cpu.SetPkrsDirect(kPkrsGuest);

  std::printf("1. privileged-instruction attacks (sec 4.1)\n");
  Report("rewrite the IDT base (lidt)",
         cpu.ExecPriv(PrivInstr::kLidt).type == FaultType::kPrivInstrBlocked,
         "PKS gating: destructive instructions trap when PKRS != 0");
  Report("load an arbitrary CR3 (mov cr3)",
         cpu.ExecPriv(PrivInstr::kMovToCr3).type == FaultType::kPrivInstrBlocked,
         "PKS gating");
  Report("raise own PKRS via wrmsr",
         cpu.WrpkrsViaMsr(0).type == FaultType::kPrivInstrBlocked, "wrmsr blocked; PKRS intact");
  Report("mask interrupts forever (cli)",
         cpu.ExecPriv(PrivInstr::kCli).type == FaultType::kPrivInstrBlocked,
         "interrupt state lives in memory, visible to the host");
  {
    cpu.Sysret(/*requested_if=*/false);
    Report("sysret to user with IF=0 (timer starvation)", cpu.interrupts_enabled(),
           "extended sysret forces IF=1 while PKRS != 0");
    cpu.set_cpl(Cpl::kKernel);
  }
  Report("flush another container's TLB (invpcid)",
         cpu.ExecPriv(PrivInstr::kInvpcid).type == FaultType::kPrivInstrBlocked,
         "invpcid blocked; invlpg is confined by PCID");

  std::printf("\n2. memory attacks (sec 4.3)\n");
  Report("read the KSM's per-vCPU area",
         cpu.Access(ksm.per_vcpu_area_va(), AccessIntent::Read()).type ==
             FaultType::kPageKeyViolation,
         "KSM memory carries pkey_KSM, denied under PKRS_GUEST");
  {
    container.UserTouch(kUserTextBase, false);
    cpu.set_cpl(Cpl::kKernel);
    cpu.SetPkrsDirect(kPkrsGuest);
    uint64_t root = container.kernel().current().pt_root;
    auto slot = container.kernel().editor().FindLeafSlot(root, kUserTextBase);
    PtpVerdict v = ksm.UpdatePte(*slot, MakePte(ksm.ksm_region_pa(), kPteP | kPteW), 1,
                                 kUserTextBase);
    Report("map KSM memory into own address space", v == PtpVerdict::kForeignFrame,
           "PTP monitor verifies frame ownership on every PTE update");
    uint64_t data = container.AllocDataPage();
    v = ksm.UpdatePte(*slot, MakePte(data, kPteP), 1, kUserTextBase);
    Report("create a kernel-executable page (smuggle wrpkrs)",
           v == PtpVerdict::kKernelExecMapping,
           "no new kernel-executable mappings after boot");
    v = ksm.LoadGuestCr3(data, 1, 0);
    Report("point CR3 at a forged page table", v == PtpVerdict::kRootNotDeclared,
           "only declared top-level PTPs are loadable");
  }

  std::printf("\n3. gate and interrupt attacks (sec 4.2/4.4)\n");
  Report("ROP-jump into the KSM gate's wrpkrs",
         !container.gates().AttackRopWrpkrs(PkAccessDisable(kPkeyPtp)),
         "post-write check (cmp after wrpkrs) aborts on mismatch");
  Report("forge an interrupt with software int",
         !container.gates().AttackForgeInterrupt(kVecVirtioNet),
         "IDT extension re-keys PKRS only on hardware delivery");
  {
    cpu.set_stack_valid(false);
    InterruptEntry e = cpu.DeliverInterrupt(kVecTimer, true);
    Report("corrupt RSP to triple-fault on interrupt", e.fault.ok(),
           "IST forces a KSM-owned interrupt stack");
    cpu.IretTrusted(Cpl::kKernel, e.saved_pkrs);
    cpu.set_stack_valid(true);
  }
  {
    cpu.set_kernel_gs_base(0xBAD0'0000'0000);
    cpu.Swapgs();
    cpu.SetPkrsDirect(kPkrsMonitor);
    bool located = container.gates().SecureStackAccessible();
    cpu.SetPkrsDirect(kPkrsGuest);
    Report("corrupt kernel_gs to misdirect the KSM", located,
           "per-vCPU area lives at a constant VA in per-vCPU PT copies");
  }

  std::printf("\n4. cross-container attack\n");
  {
    CkiEngine other(bed.machine(), CkiAblation::kNone, 4096);
    other.Boot();
    cpu.set_cpl(Cpl::kKernel);
    cpu.SetPkrsDirect(kPkrsGuest);
    container.LoadAddressSpace(container.kernel().current().pt_root,
                               container.kernel().current().asid);
    container.UserTouch(kUserTextBase + kPageSize, false);
    cpu.set_cpl(Cpl::kKernel);
    uint64_t root = container.kernel().current().pt_root;
    auto slot = container.kernel().editor().FindLeafSlot(root, kUserTextBase + kPageSize);
    PtpVerdict v = ksm.UpdatePte(*slot, MakePte(other.segment().base, kPteP | kPteW), 1,
                                 kUserTextBase + kPageSize);
    Report("map a neighbour container's memory", v == PtpVerdict::kForeignFrame,
           "delegated segments are per-container; ownership checked");
  }

  std::printf("\n%d/%d attacks blocked. Security violations traced: %llu\n", g_blocked, g_total,
              static_cast<unsigned long long>(
                  bed.ctx().trace().Count(PathEvent::kSecurityViolation)));
  return g_blocked == g_total ? 0 : 1;
}
