// Serverless burst: a spike of requests arrives; the platform cold-boots a
// fleet of secure containers, timeshares them on one core with the host
// vCPU scheduler, and each container serves cache requests. Compares the
// end-to-end burst completion time of CKI against PVM — the scenario that
// motivates secure containers in nested IaaS clouds.
//
//   ./build/examples/serverless_burst
#include <cstdio>
#include <memory>
#include <vector>

#include "src/cki/cki_engine.h"
#include "src/host/vcpu_sched.h"
#include "src/hw/pks.h"
#include "src/runtime/runtime.h"

using namespace cki;

namespace {

struct BurstResult {
  double boot_ms = 0;
  double serve_ms = 0;
  double fairness = 0;
};

BurstResult RunBurst(RuntimeKind kind, int n_containers, int requests_each) {
  Machine machine(MachineConfigFor(kind, Deployment::kNested));
  SimNanos t0 = machine.ctx().clock().now();

  // Cold boot the fleet.
  std::vector<std::unique_ptr<ContainerEngine>> fleet;
  for (int i = 0; i < n_containers; ++i) {
    if (kind == RuntimeKind::kCki) {
      fleet.push_back(std::make_unique<CkiEngine>(machine, CkiAblation::kNone,
                                                  /*segment_pages=*/4096));
    } else {
      fleet.push_back(MakeEngine(machine, kind));
    }
    fleet.back()->Boot();
  }
  BurstResult result;
  result.boot_ms = static_cast<double>(machine.ctx().clock().now() - t0) * 1e-6;

  // Serve the burst under the host scheduler (200 us slices).
  VcpuScheduler sched(machine.ctx(), /*timeslice=*/200'000);
  std::vector<int> served(static_cast<size_t>(n_containers), 0);
  for (int i = 0; i < n_containers; ++i) {
    ContainerEngine* engine = fleet[static_cast<size_t>(i)].get();
    int* count = &served[static_cast<size_t>(i)];
    sched.Add(VcpuTask{
        .engine = engine,
        .step =
            [&machine, engine, count, requests_each] {
              if (machine.cpu().extensions().pks_priv_gating) {
                machine.cpu().SetPkrsDirect(kPkrsGuest);
              }
              engine->LoadAddressSpace(engine->kernel().current().pt_root,
                                       engine->kernel().current().asid);
              // One request: epoll + recv-equivalent file read + compute +
              // send-equivalent write, plus a TX kick to the device.
              engine->UserSyscall(SyscallRequest{.no = Sys::kEpollWait});
              engine->UserSyscall(SyscallRequest{.no = Sys::kGetpid});
              machine.ctx().ChargeWork(2500);
              engine->GuestHypercall(HypercallOp::kVirtioKick, 0, 0);
              return ++*count < requests_each;
            },
        .label = "container-" + std::to_string(i)});
  }
  t0 = machine.ctx().clock().now();
  sched.Run();
  result.serve_ms = static_cast<double>(machine.ctx().clock().now() - t0) * 1e-6;
  result.fairness = sched.FairnessRatio();
  return result;
}

}  // namespace

int main() {
  constexpr int kContainers = 8;
  constexpr int kRequestsEach = 400;
  std::printf("== serverless burst: %d cold-booted containers x %d requests, one core ==\n\n",
              kContainers, kRequestsEach);
  std::printf("%-10s %12s %12s %10s\n", "runtime", "boot ms", "serve ms", "fairness");
  for (RuntimeKind kind : {RuntimeKind::kPvm, RuntimeKind::kCki}) {
    BurstResult r = RunBurst(kind, kContainers, kRequestsEach);
    std::printf("%-10s %12.2f %12.2f %10.2f\n", std::string(RuntimeKindName(kind)).c_str(),
                r.boot_ms, r.serve_ms, r.fairness);
  }
  std::printf("\nCKI's fast boots (monitored-but-cheap PTE setup) and cheap kicks\n"
              "compound across the fleet; the scheduler keeps tenants fair because\n"
              "no guest can mask or monopolize the timer.\n");
  return 0;
}
