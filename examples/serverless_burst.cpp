// Serverless burst: a spike of requests arrives and the platform must put
// N secure containers on one core, fast. Two provisioning strategies:
//
//   cold  — boot every container from scratch and page in its runtime
//           (the classic cold-start penalty),
//   clone — warm ONE template container, then serve the burst from
//           copy-on-write clones (src/snap): each clone shares the
//           template's frames read-only and pays only for the few pages
//           it actually dirties.
//
// Both fleets then serve the same request burst under the host vCPU
// scheduler, timesharing one core. Compares CKI against PVM — the
// scenario that motivates secure containers in nested IaaS clouds.
//
//   ./build/examples/serverless_burst
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/cki/cki_engine.h"
#include "src/host/vcpu_sched.h"
#include "src/hw/pks.h"
#include "src/runtime/runtime.h"
#include "src/snap/snapshot.h"

using namespace cki;

namespace {

constexpr uint64_t kTemplatePages = 256;  // the function runtime's working set
constexpr uint64_t kDirtyPages = 8;       // what one request actually writes

struct BurstResult {
  double start_ms = 0;  // provisioning: cold boots, or template + clones
  double serve_ms = 0;
  double fairness = 0;
  double frames_per_container = 0;
};

std::unique_ptr<ContainerEngine> NewEngine(Machine& machine, RuntimeKind kind) {
  if (kind == RuntimeKind::kCki) {
    return std::make_unique<CkiEngine>(machine, CkiAblation::kNone, /*segment_pages=*/4096);
  }
  return MakeEngine(machine, kind);
}

// Page in the function runtime: anonymous working set + a staged tmpfs
// asset. Returns the working-set base VA.
uint64_t WarmRuntime(ContainerEngine& engine) {
  SyscallResult r = engine.UserSyscall(SyscallRequest{.no = Sys::kOpen, .arg0 = 1});
  if (r.ok()) {
    engine.UserSyscall(
        SyscallRequest{.no = Sys::kWrite, .arg0 = static_cast<uint64_t>(r.value), .arg1 = 8192});
  }
  return engine.MmapAnon(kTemplatePages * kPageSize, /*populate=*/true);
}

BurstResult RunBurst(RuntimeKind kind, bool use_clones, int n_containers, int requests_each) {
  Machine machine(MachineConfigFor(kind, Deployment::kNested));
  SimNanos t0 = machine.ctx().clock().now();

  // Provision the fleet.
  std::unique_ptr<ContainerEngine> tmpl;  // clone mode: the warm template
  std::vector<std::unique_ptr<ContainerEngine>> fleet;
  if (use_clones) {
    tmpl = NewEngine(machine, kind);
    tmpl->Boot();
    uint64_t base = WarmRuntime(*tmpl);
    for (int i = 0; i < n_containers; ++i) {
      fleet.push_back(CloneContainer(*tmpl));
      // The clone's address space is active; dirty its private request
      // state so it pays realistic CoW breaks up front.
      for (uint64_t p = 0; p < kDirtyPages; ++p) {
        fleet.back()->UserTouch(base + p * kPageSize, /*write=*/true);
      }
    }
  } else {
    for (int i = 0; i < n_containers; ++i) {
      fleet.push_back(NewEngine(machine, kind));
      fleet.back()->Boot();
      WarmRuntime(*fleet.back());
    }
  }
  BurstResult result;
  result.start_ms = static_cast<double>(machine.ctx().clock().now() - t0) * 1e-6;
  uint64_t frames = 0;
  for (const auto& engine : fleet) {
    frames += machine.frames().OwnedFrames(engine->id());
  }
  result.frames_per_container = static_cast<double>(frames) / n_containers;

  // Serve the burst under the host scheduler (200 us slices).
  VcpuScheduler sched(machine.ctx(), /*timeslice=*/200'000);
  std::vector<int> served(static_cast<size_t>(n_containers), 0);
  for (int i = 0; i < n_containers; ++i) {
    ContainerEngine* engine = fleet[static_cast<size_t>(i)].get();
    int* count = &served[static_cast<size_t>(i)];
    sched.Add(VcpuTask{
        .engine = engine,
        .step =
            [&machine, engine, count, requests_each] {
              if (machine.cpu().extensions().pks_priv_gating) {
                machine.cpu().SetPkrsDirect(kPkrsGuest);
              }
              engine->LoadAddressSpace(engine->kernel().current().pt_root,
                                       engine->kernel().current().asid);
              // One request: epoll + recv-equivalent file read + compute +
              // send-equivalent write, plus a TX kick to the device.
              engine->UserSyscall(SyscallRequest{.no = Sys::kEpollWait});
              engine->UserSyscall(SyscallRequest{.no = Sys::kGetpid});
              machine.ctx().ChargeWork(2500);
              engine->GuestHypercall(HypercallOp::kVirtioKick, 0, 0);
              return ++*count < requests_each;
            },
        .label = "container-" + std::to_string(i)});
  }
  t0 = machine.ctx().clock().now();
  sched.Run();
  result.serve_ms = static_cast<double>(machine.ctx().clock().now() - t0) * 1e-6;
  result.fairness = sched.FairnessRatio();
  return result;
}

}  // namespace

int main() {
  constexpr int kContainers = 8;
  constexpr int kRequestsEach = 400;
  std::printf("== serverless burst: %d containers x %d requests, one core ==\n\n", kContainers,
              kRequestsEach);
  std::printf("%-10s %-8s %12s %12s %12s %10s\n", "runtime", "start", "start ms", "serve ms",
              "frames/ctr", "fairness");
  for (RuntimeKind kind : {RuntimeKind::kPvm, RuntimeKind::kCki}) {
    for (bool use_clones : {false, true}) {
      BurstResult r = RunBurst(kind, use_clones, kContainers, kRequestsEach);
      std::printf("%-10s %-8s %12.2f %12.2f %12.1f %10.2f\n",
                  std::string(RuntimeKindName(kind)).c_str(), use_clones ? "clone" : "cold",
                  r.start_ms, r.serve_ms, r.frames_per_container, r.fairness);
    }
  }
  std::printf("\nCloning a warm template turns provisioning cost from O(runtime pages)\n"
              "into O(dirtied pages) per container: the fleet shares the template's\n"
              "frames copy-on-write and serves the same burst at the same fairness.\n");
  return 0;
}
