#!/usr/bin/env python3
"""Markdown hygiene checker for the repo docs (CI: docs-hygiene job).

Checks, per file:
  * every relative link target ([text](path), not http(s)/mailto/#anchor)
    resolves to an existing file or directory relative to the repo root or
    to the linking file's directory;
  * every fenced code block opened with ``` declares a language
    (```sh, ```cpp, ```text, ...), so rendered docs always highlight;
  * fenced code blocks are balanced (no unterminated fence).

Repo-level checks (run whenever the corresponding doc is among the
arguments):
  * EXPERIMENTS.md must mention every bench binary: each bench/bench_*.cc
    stem (`bench_fig10_breakdown`, `bench_ext_simspeed`, ...) has to
    appear literally somewhere in EXPERIMENTS.md, so no bench can land
    without its paper-vs-measured entry;
  * README.md's architecture map must cover every source layer: each
    direct subdirectory of src/ has to appear as `src/<dir>` somewhere in
    README.md.

Usage: python3 tools/check_markdown.py FILE.md [FILE.md ...]
Exits non-zero listing every violation; prints a summary when clean.
"""

import glob
import os
import re
import sys

# [text](target) but not ![image](...) nested-paren safe enough for docs;
# reference-style links are rare here and skipped on purpose.
LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
FENCE_RE = re.compile(r"^(`{3,})(.*)$")

SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def check_file(path, repo_root):
    problems = []
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()

    in_fence = False
    fence_marker = ""
    fence_open_line = 0
    for lineno, line in enumerate(lines, 1):
        fence = FENCE_RE.match(line.strip())
        if fence:
            if not in_fence:
                in_fence = True
                fence_marker = fence.group(1)
                fence_open_line = lineno
                lang = fence.group(2).strip()
                if not lang:
                    problems.append(
                        f"{path}:{lineno}: fenced code block has no language "
                        "(use ```text for plain output)"
                    )
            elif fence.group(1)[: len(fence_marker)] == fence_marker and not fence.group(2).strip():
                in_fence = False
            continue
        if in_fence:
            continue  # links inside code blocks are not links

        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            target_path = target.split("#", 1)[0]  # strip in-doc anchors
            if not target_path:
                continue
            candidates = [
                os.path.join(repo_root, target_path),
                os.path.join(os.path.dirname(path) or ".", target_path),
            ]
            if not any(os.path.exists(c) for c in candidates):
                problems.append(f"{path}:{lineno}: dead relative link -> {target}")

    if in_fence:
        problems.append(f"{path}:{fence_open_line}: unterminated fenced code block")
    return problems


def check_bench_coverage(experiments_path, repo_root):
    """Every bench/bench_*.cc must be documented in EXPERIMENTS.md."""
    problems = []
    with open(experiments_path, encoding="utf-8") as f:
        text = f.read()
    for src in sorted(glob.glob(os.path.join(repo_root, "bench", "bench_*.cc"))):
        stem = os.path.splitext(os.path.basename(src))[0]
        if stem not in text:
            problems.append(
                f"{experiments_path}: bench/{stem}.cc has no entry "
                f"(mention `{stem}` with its results + regenerate recipe)"
            )
    return problems


def check_readme_architecture_map(readme_path, repo_root):
    """Every src/<dir> layer must appear in README.md's architecture map."""
    problems = []
    with open(readme_path, encoding="utf-8") as f:
        text = f.read()
    src_root = os.path.join(repo_root, "src")
    for entry in sorted(os.listdir(src_root)):
        if not os.path.isdir(os.path.join(src_root, entry)):
            continue
        if f"src/{entry}" not in text:
            problems.append(
                f"{readme_path}: src/{entry} missing from the architecture map"
            )
    return problems


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    all_problems = []
    for path in argv[1:]:
        if not os.path.exists(path):
            all_problems.append(f"{path}: file not found")
            continue
        all_problems.extend(check_file(path, repo_root))
        name = os.path.basename(path)
        if name == "EXPERIMENTS.md":
            all_problems.extend(check_bench_coverage(path, repo_root))
        elif name == "README.md":
            all_problems.extend(check_readme_architecture_map(path, repo_root))
    if all_problems:
        print("\n".join(all_problems))
        print(f"\nmarkdown hygiene: {len(all_problems)} problem(s)")
        return 1
    print(f"markdown hygiene: {len(argv) - 1} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
