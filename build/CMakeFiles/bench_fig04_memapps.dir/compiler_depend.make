# Empty compiler generated dependencies file for bench_fig04_memapps.
# This may be replaced when dependencies are built.
