file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_memapps.dir/bench/bench_fig04_memapps.cc.o"
  "CMakeFiles/bench_fig04_memapps.dir/bench/bench_fig04_memapps.cc.o.d"
  "bench/bench_fig04_memapps"
  "bench/bench_fig04_memapps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_memapps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
