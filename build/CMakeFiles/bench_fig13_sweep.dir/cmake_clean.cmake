file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_sweep.dir/bench/bench_fig13_sweep.cc.o"
  "CMakeFiles/bench_fig13_sweep.dir/bench/bench_fig13_sweep.cc.o.d"
  "bench/bench_fig13_sweep"
  "bench/bench_fig13_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
