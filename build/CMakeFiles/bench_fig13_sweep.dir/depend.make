# Empty dependencies file for bench_fig13_sweep.
# This may be replaced when dependencies are built.
