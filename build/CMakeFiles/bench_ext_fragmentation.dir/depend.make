# Empty dependencies file for bench_ext_fragmentation.
# This may be replaced when dependencies are built.
