file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_designs.dir/bench/bench_table1_designs.cc.o"
  "CMakeFiles/bench_table1_designs.dir/bench/bench_table1_designs.cc.o.d"
  "bench/bench_table1_designs"
  "bench/bench_table1_designs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
