file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_density.dir/bench/bench_ext_density.cc.o"
  "CMakeFiles/bench_ext_density.dir/bench/bench_ext_density.cc.o.d"
  "bench/bench_ext_density"
  "bench/bench_ext_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
