# Empty dependencies file for bench_ext_density.
# This may be replaced when dependencies are built.
