# Empty compiler generated dependencies file for bench_fig05_ioapps.
# This may be replaced when dependencies are built.
