file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_ioapps.dir/bench/bench_fig05_ioapps.cc.o"
  "CMakeFiles/bench_fig05_ioapps.dir/bench/bench_fig05_ioapps.cc.o.d"
  "bench/bench_fig05_ioapps"
  "bench/bench_fig05_ioapps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_ioapps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
