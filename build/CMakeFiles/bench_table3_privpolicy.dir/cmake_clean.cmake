file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_privpolicy.dir/bench/bench_table3_privpolicy.cc.o"
  "CMakeFiles/bench_table3_privpolicy.dir/bench/bench_table3_privpolicy.cc.o.d"
  "bench/bench_table3_privpolicy"
  "bench/bench_table3_privpolicy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_privpolicy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
