# Empty dependencies file for bench_fig14_sqlite.
# This may be replaced when dependencies are built.
