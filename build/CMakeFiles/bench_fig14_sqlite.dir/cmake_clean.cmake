file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_sqlite.dir/bench/bench_fig14_sqlite.cc.o"
  "CMakeFiles/bench_fig14_sqlite.dir/bench/bench_fig14_sqlite.cc.o.d"
  "bench/bench_fig14_sqlite"
  "bench/bench_fig14_sqlite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_sqlite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
