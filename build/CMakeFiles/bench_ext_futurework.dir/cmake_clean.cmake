file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_futurework.dir/bench/bench_ext_futurework.cc.o"
  "CMakeFiles/bench_ext_futurework.dir/bench/bench_ext_futurework.cc.o.d"
  "bench/bench_ext_futurework"
  "bench/bench_ext_futurework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_futurework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
