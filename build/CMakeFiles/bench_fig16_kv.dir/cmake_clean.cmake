file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_kv.dir/bench/bench_fig16_kv.cc.o"
  "CMakeFiles/bench_fig16_kv.dir/bench/bench_fig16_kv.cc.o.d"
  "bench/bench_fig16_kv"
  "bench/bench_fig16_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
