# Empty dependencies file for bench_ablation_gates.
# This may be replaced when dependencies are built.
