file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_lmbench.dir/bench/bench_fig11_lmbench.cc.o"
  "CMakeFiles/bench_fig11_lmbench.dir/bench/bench_fig11_lmbench.cc.o.d"
  "bench/bench_fig11_lmbench"
  "bench/bench_fig11_lmbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_lmbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
