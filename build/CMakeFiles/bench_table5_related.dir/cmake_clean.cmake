file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_related.dir/bench/bench_table5_related.cc.o"
  "CMakeFiles/bench_table5_related.dir/bench/bench_table5_related.cc.o.d"
  "bench/bench_table5_related"
  "bench/bench_table5_related.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_related.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
