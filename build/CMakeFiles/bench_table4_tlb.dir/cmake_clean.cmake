file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_tlb.dir/bench/bench_table4_tlb.cc.o"
  "CMakeFiles/bench_table4_tlb.dir/bench/bench_table4_tlb.cc.o.d"
  "bench/bench_table4_tlb"
  "bench/bench_table4_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
