file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_cves.dir/bench/bench_fig02_cves.cc.o"
  "CMakeFiles/bench_fig02_cves.dir/bench/bench_fig02_cves.cc.o.d"
  "bench/bench_fig02_cves"
  "bench/bench_fig02_cves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_cves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
