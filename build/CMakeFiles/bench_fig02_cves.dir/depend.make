# Empty dependencies file for bench_fig02_cves.
# This may be replaced when dependencies are built.
