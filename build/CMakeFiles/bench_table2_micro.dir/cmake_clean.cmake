file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_micro.dir/bench/bench_table2_micro.cc.o"
  "CMakeFiles/bench_table2_micro.dir/bench/bench_table2_micro.cc.o.d"
  "bench/bench_table2_micro"
  "bench/bench_table2_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
