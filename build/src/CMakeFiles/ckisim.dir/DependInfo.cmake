
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cki/binary_rewriter.cc" "src/CMakeFiles/ckisim.dir/cki/binary_rewriter.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/cki/binary_rewriter.cc.o.d"
  "/root/repo/src/cki/cki_engine.cc" "src/CMakeFiles/ckisim.dir/cki/cki_engine.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/cki/cki_engine.cc.o.d"
  "/root/repo/src/cki/driver_sandbox.cc" "src/CMakeFiles/ckisim.dir/cki/driver_sandbox.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/cki/driver_sandbox.cc.o.d"
  "/root/repo/src/cki/gates.cc" "src/CMakeFiles/ckisim.dir/cki/gates.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/cki/gates.cc.o.d"
  "/root/repo/src/cki/kernel_app.cc" "src/CMakeFiles/ckisim.dir/cki/kernel_app.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/cki/kernel_app.cc.o.d"
  "/root/repo/src/cki/ksm.cc" "src/CMakeFiles/ckisim.dir/cki/ksm.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/cki/ksm.cc.o.d"
  "/root/repo/src/cki/ksm_audit.cc" "src/CMakeFiles/ckisim.dir/cki/ksm_audit.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/cki/ksm_audit.cc.o.d"
  "/root/repo/src/cki/priv_policy.cc" "src/CMakeFiles/ckisim.dir/cki/priv_policy.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/cki/priv_policy.cc.o.d"
  "/root/repo/src/cki/ptp_monitor.cc" "src/CMakeFiles/ckisim.dir/cki/ptp_monitor.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/cki/ptp_monitor.cc.o.d"
  "/root/repo/src/guest/guest_kernel.cc" "src/CMakeFiles/ckisim.dir/guest/guest_kernel.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/guest/guest_kernel.cc.o.d"
  "/root/repo/src/guest/guest_kernel_mm.cc" "src/CMakeFiles/ckisim.dir/guest/guest_kernel_mm.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/guest/guest_kernel_mm.cc.o.d"
  "/root/repo/src/guest/tmpfs.cc" "src/CMakeFiles/ckisim.dir/guest/tmpfs.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/guest/tmpfs.cc.o.d"
  "/root/repo/src/guest/vma.cc" "src/CMakeFiles/ckisim.dir/guest/vma.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/guest/vma.cc.o.d"
  "/root/repo/src/host/frame_allocator.cc" "src/CMakeFiles/ckisim.dir/host/frame_allocator.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/host/frame_allocator.cc.o.d"
  "/root/repo/src/host/host_kernel.cc" "src/CMakeFiles/ckisim.dir/host/host_kernel.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/host/host_kernel.cc.o.d"
  "/root/repo/src/host/vcpu_sched.cc" "src/CMakeFiles/ckisim.dir/host/vcpu_sched.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/host/vcpu_sched.cc.o.d"
  "/root/repo/src/host/virtio.cc" "src/CMakeFiles/ckisim.dir/host/virtio.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/host/virtio.cc.o.d"
  "/root/repo/src/host/virtio_blk.cc" "src/CMakeFiles/ckisim.dir/host/virtio_blk.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/host/virtio_blk.cc.o.d"
  "/root/repo/src/hw/cpu.cc" "src/CMakeFiles/ckisim.dir/hw/cpu.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/hw/cpu.cc.o.d"
  "/root/repo/src/hw/ept.cc" "src/CMakeFiles/ckisim.dir/hw/ept.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/hw/ept.cc.o.d"
  "/root/repo/src/hw/fault.cc" "src/CMakeFiles/ckisim.dir/hw/fault.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/hw/fault.cc.o.d"
  "/root/repo/src/hw/instr.cc" "src/CMakeFiles/ckisim.dir/hw/instr.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/hw/instr.cc.o.d"
  "/root/repo/src/hw/page_table.cc" "src/CMakeFiles/ckisim.dir/hw/page_table.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/hw/page_table.cc.o.d"
  "/root/repo/src/hw/phys_mem.cc" "src/CMakeFiles/ckisim.dir/hw/phys_mem.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/hw/phys_mem.cc.o.d"
  "/root/repo/src/hw/tlb.cc" "src/CMakeFiles/ckisim.dir/hw/tlb.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/hw/tlb.cc.o.d"
  "/root/repo/src/metrics/report.cc" "src/CMakeFiles/ckisim.dir/metrics/report.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/metrics/report.cc.o.d"
  "/root/repo/src/runtime/engine.cc" "src/CMakeFiles/ckisim.dir/runtime/engine.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/runtime/engine.cc.o.d"
  "/root/repo/src/runtime/native_engine.cc" "src/CMakeFiles/ckisim.dir/runtime/native_engine.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/runtime/native_engine.cc.o.d"
  "/root/repo/src/runtime/runtime.cc" "src/CMakeFiles/ckisim.dir/runtime/runtime.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/runtime/runtime.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/CMakeFiles/ckisim.dir/sim/trace.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/sim/trace.cc.o.d"
  "/root/repo/src/virt/gvisor_engine.cc" "src/CMakeFiles/ckisim.dir/virt/gvisor_engine.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/virt/gvisor_engine.cc.o.d"
  "/root/repo/src/virt/hvm_engine.cc" "src/CMakeFiles/ckisim.dir/virt/hvm_engine.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/virt/hvm_engine.cc.o.d"
  "/root/repo/src/virt/libos_engine.cc" "src/CMakeFiles/ckisim.dir/virt/libos_engine.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/virt/libos_engine.cc.o.d"
  "/root/repo/src/virt/pvm_engine.cc" "src/CMakeFiles/ckisim.dir/virt/pvm_engine.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/virt/pvm_engine.cc.o.d"
  "/root/repo/src/workloads/blk_workload.cc" "src/CMakeFiles/ckisim.dir/workloads/blk_workload.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/workloads/blk_workload.cc.o.d"
  "/root/repo/src/workloads/cve_data.cc" "src/CMakeFiles/ckisim.dir/workloads/cve_data.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/workloads/cve_data.cc.o.d"
  "/root/repo/src/workloads/io_apps.cc" "src/CMakeFiles/ckisim.dir/workloads/io_apps.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/workloads/io_apps.cc.o.d"
  "/root/repo/src/workloads/kv_store.cc" "src/CMakeFiles/ckisim.dir/workloads/kv_store.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/workloads/kv_store.cc.o.d"
  "/root/repo/src/workloads/lmbench.cc" "src/CMakeFiles/ckisim.dir/workloads/lmbench.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/workloads/lmbench.cc.o.d"
  "/root/repo/src/workloads/mem_apps.cc" "src/CMakeFiles/ckisim.dir/workloads/mem_apps.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/workloads/mem_apps.cc.o.d"
  "/root/repo/src/workloads/sqlite_bench.cc" "src/CMakeFiles/ckisim.dir/workloads/sqlite_bench.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/workloads/sqlite_bench.cc.o.d"
  "/root/repo/src/workloads/tlb_apps.cc" "src/CMakeFiles/ckisim.dir/workloads/tlb_apps.cc.o" "gcc" "src/CMakeFiles/ckisim.dir/workloads/tlb_apps.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
