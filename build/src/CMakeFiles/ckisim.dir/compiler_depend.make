# Empty compiler generated dependencies file for ckisim.
# This may be replaced when dependencies are built.
