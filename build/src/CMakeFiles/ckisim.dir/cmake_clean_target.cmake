file(REMOVE_RECURSE
  "libckisim.a"
)
