# Empty compiler generated dependencies file for gates_ksm_test.
# This may be replaced when dependencies are built.
