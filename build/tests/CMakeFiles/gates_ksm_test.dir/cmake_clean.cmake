file(REMOVE_RECURSE
  "CMakeFiles/gates_ksm_test.dir/gates_ksm_test.cc.o"
  "CMakeFiles/gates_ksm_test.dir/gates_ksm_test.cc.o.d"
  "gates_ksm_test"
  "gates_ksm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gates_ksm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
