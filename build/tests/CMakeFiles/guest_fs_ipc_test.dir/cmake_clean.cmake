file(REMOVE_RECURSE
  "CMakeFiles/guest_fs_ipc_test.dir/guest_fs_ipc_test.cc.o"
  "CMakeFiles/guest_fs_ipc_test.dir/guest_fs_ipc_test.cc.o.d"
  "guest_fs_ipc_test"
  "guest_fs_ipc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guest_fs_ipc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
