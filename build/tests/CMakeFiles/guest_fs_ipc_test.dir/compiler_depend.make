# Empty compiler generated dependencies file for guest_fs_ipc_test.
# This may be replaced when dependencies are built.
