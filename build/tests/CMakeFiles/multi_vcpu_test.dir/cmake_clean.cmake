file(REMOVE_RECURSE
  "CMakeFiles/multi_vcpu_test.dir/multi_vcpu_test.cc.o"
  "CMakeFiles/multi_vcpu_test.dir/multi_vcpu_test.cc.o.d"
  "multi_vcpu_test"
  "multi_vcpu_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_vcpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
