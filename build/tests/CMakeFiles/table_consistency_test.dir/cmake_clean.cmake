file(REMOVE_RECURSE
  "CMakeFiles/table_consistency_test.dir/table_consistency_test.cc.o"
  "CMakeFiles/table_consistency_test.dir/table_consistency_test.cc.o.d"
  "table_consistency_test"
  "table_consistency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_consistency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
