# Empty dependencies file for table_consistency_test.
# This may be replaced when dependencies are built.
