file(REMOVE_RECURSE
  "CMakeFiles/timer_integration_test.dir/timer_integration_test.cc.o"
  "CMakeFiles/timer_integration_test.dir/timer_integration_test.cc.o.d"
  "timer_integration_test"
  "timer_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timer_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
