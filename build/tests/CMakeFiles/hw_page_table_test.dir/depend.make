# Empty dependencies file for hw_page_table_test.
# This may be replaced when dependencies are built.
