file(REMOVE_RECURSE
  "CMakeFiles/hw_page_table_test.dir/hw_page_table_test.cc.o"
  "CMakeFiles/hw_page_table_test.dir/hw_page_table_test.cc.o.d"
  "hw_page_table_test"
  "hw_page_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_page_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
