# Empty dependencies file for ksm_audit_test.
# This may be replaced when dependencies are built.
