file(REMOVE_RECURSE
  "CMakeFiles/ksm_audit_test.dir/ksm_audit_test.cc.o"
  "CMakeFiles/ksm_audit_test.dir/ksm_audit_test.cc.o.d"
  "ksm_audit_test"
  "ksm_audit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksm_audit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
