file(REMOVE_RECURSE
  "CMakeFiles/virtual_if_test.dir/virtual_if_test.cc.o"
  "CMakeFiles/virtual_if_test.dir/virtual_if_test.cc.o.d"
  "virtual_if_test"
  "virtual_if_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtual_if_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
