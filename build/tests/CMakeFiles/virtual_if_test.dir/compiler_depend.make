# Empty compiler generated dependencies file for virtual_if_test.
# This may be replaced when dependencies are built.
