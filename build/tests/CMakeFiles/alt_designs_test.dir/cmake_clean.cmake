file(REMOVE_RECURSE
  "CMakeFiles/alt_designs_test.dir/alt_designs_test.cc.o"
  "CMakeFiles/alt_designs_test.dir/alt_designs_test.cc.o.d"
  "alt_designs_test"
  "alt_designs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alt_designs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
