# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ptp_monitor_property_test.
