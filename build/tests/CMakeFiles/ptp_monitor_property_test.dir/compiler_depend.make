# Empty compiler generated dependencies file for ptp_monitor_property_test.
# This may be replaced when dependencies are built.
