file(REMOVE_RECURSE
  "CMakeFiles/ptp_monitor_property_test.dir/ptp_monitor_property_test.cc.o"
  "CMakeFiles/ptp_monitor_property_test.dir/ptp_monitor_property_test.cc.o.d"
  "ptp_monitor_property_test"
  "ptp_monitor_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptp_monitor_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
