file(REMOVE_RECURSE
  "CMakeFiles/hw_edge_cases_test.dir/hw_edge_cases_test.cc.o"
  "CMakeFiles/hw_edge_cases_test.dir/hw_edge_cases_test.cc.o.d"
  "hw_edge_cases_test"
  "hw_edge_cases_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_edge_cases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
