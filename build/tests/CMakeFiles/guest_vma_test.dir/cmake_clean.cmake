file(REMOVE_RECURSE
  "CMakeFiles/guest_vma_test.dir/guest_vma_test.cc.o"
  "CMakeFiles/guest_vma_test.dir/guest_vma_test.cc.o.d"
  "guest_vma_test"
  "guest_vma_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guest_vma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
