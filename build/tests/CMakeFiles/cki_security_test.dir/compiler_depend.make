# Empty compiler generated dependencies file for cki_security_test.
# This may be replaced when dependencies are built.
