file(REMOVE_RECURSE
  "CMakeFiles/cki_security_test.dir/cki_security_test.cc.o"
  "CMakeFiles/cki_security_test.dir/cki_security_test.cc.o.d"
  "cki_security_test"
  "cki_security_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cki_security_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
