file(REMOVE_RECURSE
  "CMakeFiles/file_mmap_test.dir/file_mmap_test.cc.o"
  "CMakeFiles/file_mmap_test.dir/file_mmap_test.cc.o.d"
  "file_mmap_test"
  "file_mmap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_mmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
