# Empty compiler generated dependencies file for file_mmap_test.
# This may be replaced when dependencies are built.
