# Empty compiler generated dependencies file for host_kernel_test.
# This may be replaced when dependencies are built.
