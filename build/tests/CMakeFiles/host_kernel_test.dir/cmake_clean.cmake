file(REMOVE_RECURSE
  "CMakeFiles/host_kernel_test.dir/host_kernel_test.cc.o"
  "CMakeFiles/host_kernel_test.dir/host_kernel_test.cc.o.d"
  "host_kernel_test"
  "host_kernel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
