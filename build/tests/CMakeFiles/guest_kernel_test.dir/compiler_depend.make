# Empty compiler generated dependencies file for guest_kernel_test.
# This may be replaced when dependencies are built.
