file(REMOVE_RECURSE
  "CMakeFiles/host_frame_allocator_test.dir/host_frame_allocator_test.cc.o"
  "CMakeFiles/host_frame_allocator_test.dir/host_frame_allocator_test.cc.o.d"
  "host_frame_allocator_test"
  "host_frame_allocator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_frame_allocator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
