# Empty dependencies file for host_frame_allocator_test.
# This may be replaced when dependencies are built.
