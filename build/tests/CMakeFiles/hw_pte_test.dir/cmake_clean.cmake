file(REMOVE_RECURSE
  "CMakeFiles/hw_pte_test.dir/hw_pte_test.cc.o"
  "CMakeFiles/hw_pte_test.dir/hw_pte_test.cc.o.d"
  "hw_pte_test"
  "hw_pte_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_pte_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
