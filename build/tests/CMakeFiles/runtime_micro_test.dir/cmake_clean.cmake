file(REMOVE_RECURSE
  "CMakeFiles/runtime_micro_test.dir/runtime_micro_test.cc.o"
  "CMakeFiles/runtime_micro_test.dir/runtime_micro_test.cc.o.d"
  "runtime_micro_test"
  "runtime_micro_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_micro_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
