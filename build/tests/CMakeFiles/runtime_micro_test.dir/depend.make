# Empty dependencies file for runtime_micro_test.
# This may be replaced when dependencies are built.
