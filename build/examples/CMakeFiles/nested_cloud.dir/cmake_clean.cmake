file(REMOVE_RECURSE
  "CMakeFiles/nested_cloud.dir/nested_cloud.cpp.o"
  "CMakeFiles/nested_cloud.dir/nested_cloud.cpp.o.d"
  "nested_cloud"
  "nested_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nested_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
